// Package stats provides the measurement machinery of the evaluation
// (paper §VI): streaming summaries (mean, min, max, stddev), fixed-bin
// histograms and cumulative histograms, percentiles, and deadline-miss
// accounting. The paper argues that averages alone are meaningless for a
// real-time system and relies on distributions and worst cases — this
// package is what the harness uses to produce them.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary accumulates scalar observations in a single pass.
type Summary struct {
	n        int64
	mean, m2 float64 // Welford
	min, max float64
	sum      float64
}

// NewSummary returns an empty summary.
func NewSummary() *Summary {
	return &Summary{min: math.Inf(1), max: math.Inf(-1)}
}

// Add records one observation.
func (s *Summary) Add(x float64) {
	s.n++
	s.sum += x
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
	if x < s.min {
		s.min = x
	}
	if x > s.max {
		s.max = x
	}
}

// N returns the observation count.
func (s *Summary) N() int64 { return s.n }

// Mean returns the arithmetic mean (0 if empty).
func (s *Summary) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.mean
}

// Sum returns the total.
func (s *Summary) Sum() float64 { return s.sum }

// Min and Max return the extremes (±Inf if empty).
func (s *Summary) Min() float64 { return s.min }
func (s *Summary) Max() float64 { return s.max }

// StdDev returns the sample standard deviation (0 for n < 2).
func (s *Summary) StdDev() float64 {
	if s.n < 2 {
		return 0
	}
	return math.Sqrt(s.m2 / float64(s.n-1))
}

// String formats the summary compactly.
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g min=%.4g max=%.4g sd=%.4g",
		s.n, s.Mean(), s.min, s.max, s.StdDev())
}

// Histogram counts observations into uniform bins over [Lo, Hi); values
// outside the range land in the under/overflow counters.
type Histogram struct {
	Lo, Hi    float64
	bins      []int64
	underflow int64
	overflow  int64
	total     int64
}

// NewHistogram returns a histogram with the given bin count over [lo, hi).
func NewHistogram(lo, hi float64, bins int) (*Histogram, error) {
	if !(hi > lo) {
		return nil, fmt.Errorf("stats: invalid histogram range [%v, %v)", lo, hi)
	}
	if bins < 1 {
		return nil, fmt.Errorf("stats: bins = %d, want >= 1", bins)
	}
	return &Histogram{Lo: lo, Hi: hi, bins: make([]int64, bins)}, nil
}

// MustHistogram is NewHistogram that panics on error.
func MustHistogram(lo, hi float64, bins int) *Histogram {
	h, err := NewHistogram(lo, hi, bins)
	if err != nil {
		panic(err)
	}
	return h
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.total++
	switch {
	case x < h.Lo:
		h.underflow++
	case x >= h.Hi:
		h.overflow++
	default:
		i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.bins)))
		if i >= len(h.bins) { // guard FP edge at x ≈ Hi
			i = len(h.bins) - 1
		}
		h.bins[i]++
	}
}

// Bins returns the bin counts (do not modify).
func (h *Histogram) Bins() []int64 { return h.bins }

// Total returns the number of observations including out-of-range ones.
func (h *Histogram) Total() int64 { return h.total }

// OutOfRange returns the underflow and overflow counts.
func (h *Histogram) OutOfRange() (under, over int64) { return h.underflow, h.overflow }

// BinCenter returns the center value of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.bins))
	return h.Lo + (float64(i)+0.5)*w
}

// Cumulative returns the running totals per bin (underflow included), the
// data behind the paper's Fig. 10.
func (h *Histogram) Cumulative() []int64 {
	out := make([]int64, len(h.bins))
	run := h.underflow
	for i, c := range h.bins {
		run += c
		out[i] = run
	}
	return out
}

// MaxBin returns the largest bin count (used for plot scaling).
func (h *Histogram) MaxBin() int64 {
	var m int64
	for _, c := range h.bins {
		if c > m {
			m = c
		}
	}
	return m
}

// Percentiles computes the q-quantiles (0 <= q <= 1) of a sample slice.
// The input is copied and sorted; intended for end-of-run reporting, not
// hot paths.
func Percentiles(xs []float64, qs ...float64) []float64 {
	out := make([]float64, len(qs))
	if len(xs) == 0 {
		return out
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	for i, q := range qs {
		if q <= 0 {
			out[i] = sorted[0]
			continue
		}
		if q >= 1 {
			out[i] = sorted[len(sorted)-1]
			continue
		}
		pos := q * float64(len(sorted)-1)
		lo := int(pos)
		frac := pos - float64(lo)
		if lo+1 < len(sorted) {
			out[i] = sorted[lo]*(1-frac) + sorted[lo+1]*frac
		} else {
			out[i] = sorted[lo]
		}
	}
	return out
}

// DeadlineTracker counts misses against a fixed deadline, mirroring the
// paper's "five out of 10K APC executions exceed the deadline of 2.9 ms".
type DeadlineTracker struct {
	Deadline float64
	total    int64
	missed   int64
	worst    float64
}

// NewDeadlineTracker returns a tracker for the given deadline.
func NewDeadlineTracker(deadline float64) *DeadlineTracker {
	return &DeadlineTracker{Deadline: deadline}
}

// Add records one cycle time and reports whether it missed the deadline.
func (d *DeadlineTracker) Add(x float64) bool {
	d.total++
	if x > d.worst {
		d.worst = x
	}
	if x > d.Deadline {
		d.missed++
		return true
	}
	return false
}

// Total and Missed return the counters; Worst the worst observation.
func (d *DeadlineTracker) Total() int64   { return d.total }
func (d *DeadlineTracker) Missed() int64  { return d.missed }
func (d *DeadlineTracker) Worst() float64 { return d.worst }

// MissRate returns missed/total (0 if empty).
func (d *DeadlineTracker) MissRate() float64 {
	if d.total == 0 {
		return 0
	}
	return float64(d.missed) / float64(d.total)
}
