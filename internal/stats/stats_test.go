package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummaryBasics(t *testing.T) {
	s := NewSummary()
	if s.Mean() != 0 || s.StdDev() != 0 || s.N() != 0 {
		t.Fatal("empty summary not zeroed")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 || s.Sum() != 40 {
		t.Fatalf("n=%d sum=%v", s.N(), s.Sum())
	}
	if s.Mean() != 5 {
		t.Fatalf("mean = %v", s.Mean())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
	// Sample stddev of this classic set: sqrt(32/7).
	want := math.Sqrt(32.0 / 7)
	if math.Abs(s.StdDev()-want) > 1e-12 {
		t.Fatalf("sd = %v, want %v", s.StdDev(), want)
	}
	if !strings.Contains(s.String(), "n=8") {
		t.Fatal("String missing n")
	}
}

func TestSummaryMatchesNaiveProperty(t *testing.T) {
	f := func(raw []float64) bool {
		var xs []float64
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e6 {
				xs = append(xs, x)
			}
		}
		if len(xs) < 2 {
			return true
		}
		s := NewSummary()
		sum := 0.0
		for _, x := range xs {
			s.Add(x)
			sum += x
		}
		mean := sum / float64(len(xs))
		var ss float64
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		sd := math.Sqrt(ss / float64(len(xs)-1))
		return math.Abs(s.Mean()-mean) < 1e-6 && math.Abs(s.StdDev()-sd) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramBinning(t *testing.T) {
	h := MustHistogram(0, 10, 10)
	h.Add(-1)   // underflow
	h.Add(0)    // bin 0
	h.Add(5.5)  // bin 5
	h.Add(9.99) // bin 9
	h.Add(10)   // overflow
	h.Add(25)   // overflow
	if h.Total() != 6 {
		t.Fatalf("total = %d", h.Total())
	}
	u, o := h.OutOfRange()
	if u != 1 || o != 2 {
		t.Fatalf("under/over = %d/%d", u, o)
	}
	bins := h.Bins()
	if bins[0] != 1 || bins[5] != 1 || bins[9] != 1 {
		t.Fatalf("bins = %v", bins)
	}
	if c := h.BinCenter(5); c != 5.5 {
		t.Fatalf("BinCenter(5) = %v", c)
	}
	if h.MaxBin() != 1 {
		t.Fatalf("MaxBin = %d", h.MaxBin())
	}
}

func TestHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(5, 5, 10); err == nil {
		t.Fatal("empty range accepted")
	}
	if _, err := NewHistogram(0, 1, 0); err == nil {
		t.Fatal("0 bins accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustHistogram did not panic")
		}
	}()
	MustHistogram(1, 0, 5)
}

func TestHistogramCumulative(t *testing.T) {
	h := MustHistogram(0, 4, 4)
	for _, x := range []float64{-1, 0.5, 1.5, 1.6, 3.5} {
		h.Add(x)
	}
	cum := h.Cumulative()
	want := []int64{2, 4, 4, 5} // underflow counts into the first bin
	for i := range want {
		if cum[i] != want[i] {
			t.Fatalf("cumulative = %v, want %v", cum, want)
		}
	}
}

func TestHistogramCountsSumProperty(t *testing.T) {
	f := func(xs []float64) bool {
		h := MustHistogram(-100, 100, 37)
		clean := 0
		for _, x := range xs {
			if math.IsNaN(x) {
				continue
			}
			h.Add(x)
			clean++
		}
		var sum int64
		for _, c := range h.Bins() {
			sum += c
		}
		u, o := h.OutOfRange()
		return sum+u+o == int64(clean) && h.Total() == int64(clean)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPercentiles(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	ps := Percentiles(xs, 0, 0.5, 1)
	if ps[0] != 1 || ps[1] != 3 || ps[2] != 5 {
		t.Fatalf("percentiles = %v", ps)
	}
	// Interpolation: p25 of 1..5 = 2.
	if p := Percentiles(xs, 0.25)[0]; p != 2 {
		t.Fatalf("p25 = %v", p)
	}
	if p := Percentiles(nil, 0.5); p[0] != 0 {
		t.Fatalf("empty percentiles = %v", p)
	}
	// Out-of-range q clamps.
	if p := Percentiles(xs, -1, 2); p[0] != 1 || p[1] != 5 {
		t.Fatalf("clamped = %v", p)
	}
	// Input must not be mutated.
	if xs[0] != 5 {
		t.Fatal("Percentiles mutated input")
	}
}

func TestDeadlineTracker(t *testing.T) {
	d := NewDeadlineTracker(2.9)
	if d.MissRate() != 0 {
		t.Fatal("empty miss rate")
	}
	for i := 0; i < 9; i++ {
		if d.Add(1.0) {
			t.Fatal("1.0 flagged as miss")
		}
	}
	if !d.Add(3.5) {
		t.Fatal("3.5 not flagged")
	}
	if d.Total() != 10 || d.Missed() != 1 {
		t.Fatalf("total/missed = %d/%d", d.Total(), d.Missed())
	}
	if d.Worst() != 3.5 {
		t.Fatalf("worst = %v", d.Worst())
	}
	if math.Abs(d.MissRate()-0.1) > 1e-12 {
		t.Fatalf("miss rate = %v", d.MissRate())
	}
}

func TestRenderHistogram(t *testing.T) {
	h := MustHistogram(0, 1, 4)
	for i := 0; i < 10; i++ {
		h.Add(0.3)
	}
	h.Add(2)
	out := RenderHistogram(h, "test", 20)
	if !strings.Contains(out, "test (n=11)") {
		t.Fatalf("missing title: %q", out)
	}
	if !strings.Contains(out, "####") {
		t.Fatal("missing bars")
	}
	if !strings.Contains(out, "out of range") {
		t.Fatal("missing overflow note")
	}
	// Tiny width is clamped, not broken.
	if RenderHistogram(h, "t", 1) == "" {
		t.Fatal("empty render")
	}
	// Empty histogram renders without dividing by zero.
	if RenderHistogram(MustHistogram(0, 1, 2), "e", 20) == "" {
		t.Fatal("empty histogram render failed")
	}
}

func TestRenderCumulative(t *testing.T) {
	h := MustHistogram(0, 1, 2)
	h.Add(0.1)
	h.Add(0.9)
	out := RenderCumulative(h, "c", 20)
	if !strings.Contains(out, "100.0%") {
		t.Fatalf("missing 100%%: %q", out)
	}
	if !strings.Contains(out, "50.0%") {
		t.Fatalf("missing 50%%: %q", out)
	}
}

func TestRenderGantt(t *testing.T) {
	tasks := []GanttTask{
		{Name: "a", Worker: 0, Start: 0, End: 10},
		{Name: "b", Worker: 1, Start: 5, End: 15},
		{Name: "c", Worker: 0, Start: 12, End: 20},
	}
	out := RenderGantt(tasks, "sched", 40)
	if !strings.Contains(out, "T0") || !strings.Contains(out, "T1") {
		t.Fatalf("missing worker rows: %q", out)
	}
	if !strings.Contains(out, "#") {
		t.Fatal("missing bars")
	}
	if !strings.Contains(out, ".") {
		t.Fatal("missing waiting gap")
	}
	// Degenerate inputs.
	if RenderGantt(nil, "empty", 40) == "" {
		t.Fatal("empty gantt failed")
	}
}

func TestRenderProfile(t *testing.T) {
	out := RenderProfile([]int{1, 3, 2, 1}, "prof", 3)
	if !strings.Contains(out, "peak 3") {
		t.Fatalf("missing peak: %q", out)
	}
	if !strings.Contains(out, "#") {
		t.Fatal("missing columns")
	}
	if RenderProfile(nil, "empty", 3) == "" {
		t.Fatal("empty profile failed")
	}
}

func TestRenderTable(t *testing.T) {
	out := RenderTable([]string{"strategy", "ms"}, [][]string{
		{"busy", "0.45"},
		{"sleep", "0.47"},
	})
	if !strings.Contains(out, "strategy") || !strings.Contains(out, "busy") {
		t.Fatalf("table missing content: %q", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want 4", len(lines))
	}
}
