package fleet

import (
	"errors"
	"testing"
	"time"

	"djstar/internal/admission"
	"djstar/internal/engine"
	"djstar/internal/graph"
)

func testConfig() Config {
	gc := graph.DefaultConfig()
	gc.TrackBars = 2
	cfg := Config{
		Shards:          2,
		WorkersPerShard: 1,
	}
	cfg.Engine.Graph = gc
	return cfg
}

func TestFleetAddRemoveSession(t *testing.T) {
	f, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	s, p, err := f.AddSession(engine.SessionSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if s.ID() != "s-000000" {
		t.Fatalf("auto ID = %q", s.ID())
	}
	if p.Shard != s.Shard() || p.Shard < 0 {
		t.Fatalf("placement shard %d, session shard %d", p.Shard, s.Shard())
	}
	if len(p.Candidates) != 2 {
		t.Fatalf("placement probed %d shards, want 2", len(p.Candidates))
	}
	// The session must actually be cycling on the packet clock.
	deadline := time.Now().Add(5 * time.Second)
	for s.Engine().Cycles() < 3 {
		if time.Now().After(deadline) {
			t.Fatal("session driver not advancing")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, _, err := f.AddSession(engine.SessionSpec{ID: "s-000000"}); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate ID error = %v", err)
	}
	if err := f.RemoveSession(s.ID()); err != nil {
		t.Fatal(err)
	}
	if got := f.Session(s.ID()); got != nil {
		t.Fatal("session still registered after remove")
	}
	if n := f.shards[s.Shard()].ctl.Len(); n != 0 {
		t.Fatalf("controller still tracks %d sessions after remove", n)
	}
}

// TestPlacementHeadroomBeatsRoundRobin pre-loads shard 0 with a heavy
// ballast registration and shows that analytical-headroom placement
// (a) sends the first session to the empty shard with the larger
// probed headroom, and (b) admits strictly more sessions than blind
// round-robin on the same asymmetric fleet.
func TestPlacementHeadroomBeatsRoundRobin(t *testing.T) {
	// Probe the per-session load first so the envelope can be sized to
	// "three plain sessions per shard" regardless of machine. Scale 1
	// gives paper-scale analytical costs; with a zero calibration the
	// kernels still run cost-free, so the test stays fast.
	base := testConfig()
	base.Engine.Graph.Scale = 1
	base.Engine.Graph.Calibration = graph.Calibration{NanosPerUnit: 1e12}
	probe, err := New(base)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := probe.report(probe.cfg.Engine.Graph)
	if err != nil {
		probe.Close()
		t.Fatal(err)
	}
	W, CP, B := rep.TotalWorkUS, rep.CritPathUS, rep.BaseUS
	probe.Close()
	if W <= 0 || CP <= 0 {
		t.Fatalf("degenerate report: work %v cp %v", W, CP)
	}

	const margin = 1.25
	cfg := testConfig()
	cfg.Engine.Graph.Scale = 1
	cfg.Engine.Graph.Calibration = graph.Calibration{NanosPerUnit: 1e12}
	cfg.ProcsPerShard = 1
	cfg.Admission = admission.Config{
		Margin: margin,
		// Exactly three plain sessions fit on one shard (m = 1):
		// bound(n) = margin × (B + CP + (nW − CP)).
		PeriodUS: margin*(B+CP+(3*W-CP)) * 1.0001,
	}
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	// Ballast on shard 0: 1.5 sessions' worth of permanent work, so
	// shard 0 can absorb only one more session.
	ballast := &admission.Report{TotalWorkUS: 1.5 * W, CritPathUS: 0, BaseUS: 0}
	if err := f.shards[0].ctl.TryAdmit("ballast", ballast); err != nil {
		t.Fatalf("ballast refused: %v", err)
	}

	var placements []int
	admitted := 0
	for i := 0; i < 4; i++ {
		s, p, err := f.AddSession(engine.SessionSpec{})
		if err != nil {
			t.Fatalf("session %d refused: %v", i, err)
		}
		admitted++
		placements = append(placements, p.Shard)
		// Every decision must be justified: no fitting candidate may
		// have strictly more headroom than the chosen shard.
		for _, c := range p.Candidates {
			if c.Fits && c.HeadroomUS > p.HeadroomUS+1e-6 {
				t.Fatalf("session %d placed on shard %d (headroom %.0f) but shard %d offered %.0f",
					i, p.Shard, p.HeadroomUS, c.Shard, c.HeadroomUS)
			}
		}
		_ = s
	}
	if placements[0] != 1 {
		t.Fatalf("first session went to ballasted shard 0 (placements %v)", placements)
	}
	if admitted != 4 {
		t.Fatalf("headroom placement admitted %d/4", admitted)
	}

	// Round-robin on an identical fleet: alternate shards blindly.
	rr := []*admission.Controller{
		admission.NewController(1, cfg.Admission),
		admission.NewController(1, cfg.Admission),
	}
	if err := rr[0].TryAdmit("ballast", ballast); err != nil {
		t.Fatal(err)
	}
	rrAdmitted := 0
	for i := 0; i < 4; i++ {
		if rr[i%2].TryAdmit(f.Sessions()[i].ID(), rep) == nil {
			rrAdmitted++
		}
	}
	if rrAdmitted >= admitted {
		t.Fatalf("round-robin admitted %d, headroom %d — headroom should win on asymmetric load",
			rrAdmitted, admitted)
	}
}

// TestDrainMigratesAllExactlyOnce drains a shard under live paced load
// and checks the three invariants: every session leaves, every session
// keeps advancing, and across the whole run every node executed exactly
// once per cycle (the observer counts survive the migration).
func TestDrainMigratesAllExactlyOnce(t *testing.T) {
	cfg := testConfig()
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	const n = 6
	for i := 0; i < n; i++ {
		if _, _, err := f.AddSession(engine.SessionSpec{}); err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
	}
	time.Sleep(30 * time.Millisecond)

	pre := map[string]uint64{}
	var onShard0 int
	for _, s := range f.Sessions() {
		pre[s.ID()] = s.Engine().Cycles()
		if s.Shard() == 0 {
			onShard0++
		}
	}
	if onShard0 == 0 {
		t.Fatal("placement put nothing on shard 0")
	}

	res, err := f.Drain(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Moved != onShard0 || res.Failed != 0 {
		t.Fatalf("drain moved %d (want %d), failed %d: %v", res.Moved, onShard0, res.Failed, res.Errors)
	}
	for _, s := range f.Sessions() {
		if s.Shard() == 0 {
			t.Fatalf("session %s still on drained shard", s.ID())
		}
		if snap := s.Engine().Snapshot(); snap.Shard != "1" {
			t.Fatalf("session %s snapshot shard = %q after migration", s.ID(), snap.Shard)
		}
	}

	// Placements refuse the draining shard; Undrain reopens it.
	if s, p, err := f.AddSession(engine.SessionSpec{}); err != nil || p.Shard != 1 {
		t.Fatalf("placement during drain: shard %d err %v", p.Shard, err)
	} else if err := f.RemoveSession(s.ID()); err != nil {
		t.Fatal(err)
	}
	if err := f.Undrain(0); err != nil {
		t.Fatal(err)
	}
	if _, p, err := f.AddSession(engine.SessionSpec{}); err != nil || p.Shard != 0 {
		t.Fatalf("post-undrain placement: shard %d err %v (empty shard 0 has max headroom)", p.Shard, err)
	}

	// Everyone keeps cycling after the drain. Poll with a deadline: under
	// -race on a small host, 8 paced sessions share one CPU and a fixed
	// sleep is not enough for every driver to get a turn.
	deadline := time.Now().Add(10 * time.Second)
	for _, s := range f.Sessions() {
		for s.Engine().Cycles() <= pre[s.ID()] {
			if time.Now().After(deadline) {
				t.Fatalf("session %s stopped advancing across drain", s.ID())
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	// Exactly-once: freeze the fleet, then compare per-node execution
	// counts against each engine's cycle count.
	engines := map[string]*engine.Engine{}
	for _, s := range f.Sessions() {
		engines[s.ID()] = s.Engine()
	}
	f.Close()
	for id, e := range engines {
		cycles := e.Cycles()
		if cycles == 0 {
			t.Fatalf("session %s ran no cycles", id)
		}
		col := e.Collector()
		if col == nil {
			t.Fatalf("session %s has no collector", id)
		}
		for _, ns := range col.NodeStats() {
			if ns.Count != cycles {
				t.Fatalf("session %s node %s executed %d times over %d cycles — lost or doubled work across migration",
					id, ns.Name, ns.Count, cycles)
			}
		}
	}
}
