// Package fleet shards one process's sessions across N independent
// worker pools sized to the machine's core topology — the scale-out
// layer above engine.MultiEngine. Each shard owns a sched.Pool plus an
// admission.Controller, optionally pinned to a disjoint CPU set
// (Linux sched_setaffinity; portable no-op elsewhere), so shards
// cannot steal each other's cores and one shard's overload cannot
// smear across the fleet.
//
// New sessions are placed by ANALYTICAL HEADROOM: every non-draining
// shard's controller is probed with the candidate's admission report,
// and the session lands on the shard whose post-admission minimum
// aggregate headroom is largest (ties fall to the shard with fewer
// sessions, then the lower ID — degenerating to round-robin on a
// symmetric fleet). Draining a shard migrates its sessions onto the
// rest of the fleet at cycle boundaries via engine.Rebind, carrying
// audio state, cycle counts and fault state so no cycle is lost or
// doubled; fleet-scoped session IDs stay stable across the move.
//
// See DESIGN.md §16.
package fleet

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"djstar/internal/admission"
	"djstar/internal/apiv1"
	"djstar/internal/audio"
	"djstar/internal/engine"
	"djstar/internal/graph"
	"djstar/internal/hardware"
	"djstar/internal/rescon"
	"djstar/internal/sched"
	"djstar/internal/telemetry"
)

// ErrSessionClosed reports an operation against a session whose driver
// has stopped.
var ErrSessionClosed = errors.New("fleet: session closed")

// ErrDraining reports an operation against a draining shard.
var ErrDraining = errors.New("fleet: shard draining")

// ErrDuplicate reports an AddSession with an ID already in use.
var ErrDuplicate = errors.New("fleet: duplicate session ID")

// Config configures a fleet.
type Config struct {
	// Shards is the shard count (default 2).
	Shards int
	// WorkersPerShard is the helper worker count of each shard's pool
	// (session drivers add one more executor each). Default: the shard's
	// CPU-set size minus one, at least 1.
	WorkersPerShard int
	// SessionsPerShard caps concurrently attached sessions per shard
	// (pool slot capacity; default 256).
	SessionsPerShard int
	// Pin pins each shard's workers to its disjoint CPU set via
	// sched_setaffinity. Silently ignored where unsupported
	// (hardware.PinningSupported reports false).
	Pin bool
	// ProcsPerShard overrides the analytical parallelism each shard's
	// admission controller assumes (0 = derived from the worker count
	// and the CPU split). Placement tests pin it to keep aggregate
	// bounds machine-independent.
	ProcsPerShard int
	// Period paces each session's cycle loop (default
	// audio.StandardPacketPeriod, the 2.902 ms packet clock). Negative
	// runs unpaced, back to back.
	Period time.Duration
	// Engine is the base per-session config; SessionSpec resolves over
	// it. Strategy/Threads/Pool and the engine-level admission gate are
	// overridden per shard — the fleet owns admission.
	Engine engine.Config
	// Admission configures each shard's controller (zero = defaults:
	// 2902.3 µs envelope, 1.25 margin; BaseUS defaults from the graph
	// scale).
	Admission admission.Config
	// OnPlacement observes every placement decision (create and drain).
	OnPlacement func(apiv1.Placement)
	// Logf, when set, receives placement/drain log lines.
	Logf func(format string, args ...any)
}

// Shard is one independent pool + admission controller, optionally
// pinned to a disjoint CPU set.
type Shard struct {
	id       int
	cpus     []int
	pool     *sched.Pool
	ctl      *admission.Controller
	procs    int
	pinned   bool
	draining atomic.Bool
}

// ID returns the shard's fleet-wide index.
func (sh *Shard) ID() int { return sh.id }

// Pool exposes the shard's worker pool.
func (sh *Shard) Pool() *sched.Pool { return sh.pool }

// Controller exposes the shard's admission controller.
func (sh *Shard) Controller() *admission.Controller { return sh.ctl }

// Draining reports whether the shard is refusing placements.
func (sh *Shard) Draining() bool { return sh.draining.Load() }

// Fleet owns the shards and the session registry.
type Fleet struct {
	cfg    Config
	period time.Duration
	acfg   admission.Config
	shards []*Shard

	// mu serializes placement (probe → admit must be atomic across
	// shards) and guards sessions/seq.
	mu       sync.Mutex
	sessions map[string]*Session
	seq      int
	closed   bool

	// repCache caches the per-session admission report by graph scale —
	// the report's work/critical-path/base terms are what controllers
	// consume, and they depend only on the graph shape and scale.
	repCache map[float64]*admission.Report
}

// New builds the fleet: Shards pools with WorkersPerShard helpers each,
// pinned to disjoint CPU sets when requested and supported.
func New(cfg Config) (*Fleet, error) {
	if cfg.Shards == 0 {
		cfg.Shards = 2
	}
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("fleet: %d shards, want >= 1", cfg.Shards)
	}
	if cfg.SessionsPerShard <= 0 {
		cfg.SessionsPerShard = 256
	}
	period := cfg.Period
	if period == 0 {
		period = audio.StandardPacketPeriod
	}
	acfg := cfg.Admission
	if acfg.BaseUS == 0 {
		acfg.BaseUS = engine.SessionBaseUS(cfg.Engine.Graph.Scale)
	}
	f := &Fleet{
		cfg:      cfg,
		period:   period,
		acfg:     acfg,
		sessions: make(map[string]*Session),
		repCache: make(map[float64]*admission.Report),
	}
	sets := hardware.SplitCPUs(runtime.NumCPU(), cfg.Shards)
	for i := 0; i < cfg.Shards; i++ {
		cpus := sets[i]
		workers := cfg.WorkersPerShard
		if workers <= 0 {
			workers = len(cpus) - 1
			if workers < 1 {
				workers = 1
			}
		}
		sh := &Shard{id: i, cpus: cpus}
		var popts sched.PoolOptions
		if cfg.Pin && hardware.PinningSupported() && len(cpus) > 0 {
			set := cpus
			popts.OnWorkerStart = func(int) { _ = hardware.PinThread(set) }
			sh.pinned = true
		}
		pool, err := sched.NewPoolWith(workers, cfg.SessionsPerShard, popts)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("fleet: shard %d: %w", i, err)
		}
		sh.pool = pool
		// The controller counts the parallelism the shard really has:
		// workers+1 (the driving session lends its goroutine), clamped to
		// the shard's CPU share when pinned, the whole machine otherwise.
		sh.procs = workers + 1
		limit := runtime.GOMAXPROCS(0)
		if sh.pinned {
			limit = len(cpus)
		}
		if sh.procs > limit {
			sh.procs = limit
		}
		if sh.procs < 1 {
			sh.procs = 1
		}
		if cfg.ProcsPerShard > 0 {
			sh.procs = cfg.ProcsPerShard
		}
		sh.ctl = admission.NewController(sh.procs, acfg)
		f.shards = append(f.shards, sh)
	}
	return f, nil
}

// Shards returns the shard slice (fixed after New).
func (f *Fleet) Shards() []*Shard { return f.shards }

// Period returns the session pacing period.
func (f *Fleet) Period() time.Duration { return f.period }

func (f *Fleet) logf(format string, args ...any) {
	if f.cfg.Logf != nil {
		f.cfg.Logf(format, args...)
	}
}

// report returns the cached per-session admission report for a graph
// config — total work, critical path and base cost at the config's
// scale, the terms shard controllers aggregate.
func (f *Fleet) report(gcfg graph.Config) (*admission.Report, error) {
	if rep, ok := f.repCache[gcfg.Scale]; ok {
		return rep, nil
	}
	_, g, err := graph.BuildDJStar(gcfg)
	if err != nil {
		return nil, err
	}
	plan, err := g.Compile()
	if err != nil {
		return nil, err
	}
	costs := rescon.PaperCostsUS(plan)
	for i := range costs {
		costs[i] *= gcfg.Scale
	}
	acfg := f.acfg
	if gcfg.Scale != f.cfg.Engine.Graph.Scale {
		acfg.BaseUS = engine.SessionBaseUS(gcfg.Scale)
	}
	rep, err := admission.Analyze(plan, costs, sched.NamePool, f.shards[0].procs, "static", acfg)
	if err != nil {
		return nil, err
	}
	f.repCache[gcfg.Scale] = rep
	return rep, nil
}

// placeLocked probes every eligible shard with the candidate's report
// and picks the one with the most post-admission analytical headroom.
// exclude < 0 considers all shards. Caller holds f.mu. The chosen
// shard is nil when nothing fits.
func (f *Fleet) placeLocked(rep *admission.Report, exclude int, reason string) (*Shard, apiv1.Placement) {
	p := apiv1.Placement{Shard: -1, BoundUS: rep.BoundUS, Reason: reason}
	var best *Shard
	for _, sh := range f.shards {
		if sh.id == exclude || sh.draining.Load() {
			continue
		}
		h, fits := sh.ctl.Probe(rep)
		c := apiv1.ShardHeadroom{Shard: sh.id, HeadroomUS: h, Fits: fits, Sessions: sh.ctl.Len()}
		p.Candidates = append(p.Candidates, c)
		if !fits {
			continue
		}
		if best == nil {
			best = sh
			p.HeadroomUS = h
			continue
		}
		const eps = 1e-6
		switch {
		case h > p.HeadroomUS+eps:
			best, p.HeadroomUS = sh, h
		case h > p.HeadroomUS-eps && sh.ctl.Len() < best.ctl.Len():
			// Equal headroom: fewer sessions wins (then the lower ID,
			// implicit in iteration order).
			best, p.HeadroomUS = sh, h
		}
	}
	if best != nil {
		p.Shard = best.id
	}
	return best, p
}

// AddSession places and starts one session. The spec's ID must be
// unused (empty auto-assigns a fleet-scoped monotonic "s-NNNNNN"). The
// error wraps admission.ErrOverBudget when no shard has analytical
// room, sched.ErrPoolFull when the chosen shard's slots are exhausted.
func (f *Fleet) AddSession(spec engine.SessionSpec) (*Session, apiv1.Placement, error) {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil, apiv1.Placement{Shard: -1}, fmt.Errorf("fleet: AddSession after Close")
	}
	if spec.ID == "" {
		spec.ID = fmt.Sprintf("s-%06d", f.seq)
	}
	if _, dup := f.sessions[spec.ID]; dup {
		f.mu.Unlock()
		return nil, apiv1.Placement{Shard: -1}, fmt.Errorf("session %q already exists: %w", spec.ID, ErrDuplicate)
	}
	f.seq++

	gcfg := f.cfg.Engine.Graph
	if spec.Graph != nil {
		gcfg = *spec.Graph
	}
	rep, err := f.report(gcfg)
	if err != nil {
		f.mu.Unlock()
		return nil, apiv1.Placement{Shard: -1}, err
	}
	if spec.AdmissionMargin > 0 && f.acfg.Margin > 0 {
		// A per-session margin override is folded into the registered
		// load: the controller applies one shard-wide margin, so the
		// candidate's terms are scaled by the ratio instead.
		r := *rep
		k := spec.AdmissionMargin / f.acfg.Margin
		r.TotalWorkUS *= k
		r.CritPathUS *= k
		r.BaseUS *= k
		rep = &r
	}
	sh, placement := f.placeLocked(rep, -1, "create")
	if sh == nil {
		f.mu.Unlock()
		return nil, placement, fmt.Errorf("fleet: no shard can admit session %q (bound %.0f µs): %w",
			spec.ID, rep.BoundUS, admission.ErrOverBudget)
	}
	if err := sh.ctl.TryAdmit(spec.ID, rep); err != nil {
		f.mu.Unlock()
		return nil, placement, err
	}

	c := spec.Resolve(f.cfg.Engine)
	c.Pool = sh.pool
	c.Strategy = sched.NamePool
	// The fleet owns admission — the engine-level gate stays out of the
	// way, and each session gets a private load-factor knob.
	c.Admission.Enabled = false
	c.Admission.Controller = nil
	c.Graph.LoadFactor = nil
	c.Telemetry.Session = spec.ID
	c.Telemetry.Shard = strconv.Itoa(sh.id)
	c.DisableGC = false
	eng, err := engine.New(c)
	if err != nil {
		sh.ctl.Release(spec.ID)
		f.mu.Unlock()
		return nil, placement, err
	}

	s := &Session{
		id:      spec.ID,
		fleet:   f,
		eng:     eng,
		rep:     rep,
		verdict: "admit",
		boundUS: rep.BoundUS,
		ctl:     make(chan func()),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
		m:       eng.NewMetrics(),
	}
	s.setHeadroom(placement.HeadroomUS)
	s.shard.Store(int32(sh.id))
	f.sessions[spec.ID] = s
	f.mu.Unlock()

	go s.run(f.period)
	f.logf("place %s -> shard %d (headroom %.0f µs, bound %.0f µs, %d candidates)",
		spec.ID, sh.id, placement.HeadroomUS, rep.BoundUS, len(placement.Candidates))
	if f.cfg.OnPlacement != nil {
		f.cfg.OnPlacement(placement)
	}
	return s, placement, nil
}

// Session returns a session by ID (nil when unknown).
func (f *Fleet) Session(id string) *Session {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.sessions[id]
}

// Sessions returns the live sessions sorted by ID.
func (f *Fleet) Sessions() []*Session {
	f.mu.Lock()
	out := make([]*Session, 0, len(f.sessions))
	for _, s := range f.sessions {
		out = append(out, s)
	}
	f.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// RemoveSession stops and releases one session.
func (f *Fleet) RemoveSession(id string) error {
	f.mu.Lock()
	s, ok := f.sessions[id]
	if ok {
		delete(f.sessions, id)
	}
	f.mu.Unlock()
	if !ok {
		return fmt.Errorf("fleet: no session %q", id)
	}
	s.close()
	f.shards[s.Shard()].ctl.Release(id)
	return nil
}

// migrate moves one session onto the best other shard at a cycle
// boundary. Caller must NOT hold f.mu.
func (f *Fleet) migrate(s *Session, exclude int) (apiv1.Placement, error) {
	f.mu.Lock()
	dst, placement := f.placeLocked(s.rep, exclude, "drain")
	if dst == nil {
		f.mu.Unlock()
		return placement, fmt.Errorf("fleet: no shard can absorb session %q: %w", s.id, admission.ErrOverBudget)
	}
	// Admit on the destination before the move; the source keeps its
	// registration until the rebind lands, so concurrent placements see
	// a conservative picture on both shards.
	if err := dst.ctl.TryAdmit(s.id, s.rep); err != nil {
		f.mu.Unlock()
		return placement, err
	}
	f.mu.Unlock()

	src := f.shards[s.Shard()]
	err := s.do(func() error { return s.eng.Rebind(dst.pool) })
	if err != nil {
		dst.ctl.Release(s.id)
		return placement, err
	}
	src.ctl.Release(s.id)
	s.shard.Store(int32(dst.id))
	s.setHeadroom(placement.HeadroomUS)
	if tel := s.eng.Telemetry(); tel != nil {
		tel.SetShard(strconv.Itoa(dst.id))
	}
	f.logf("migrate %s: shard %d -> %d (headroom %.0f µs)", s.id, src.id, dst.id, placement.HeadroomUS)
	if f.cfg.OnPlacement != nil {
		f.cfg.OnPlacement(placement)
	}
	return placement, nil
}

// Drain marks a shard as refusing placements and migrates every one of
// its sessions onto the rest of the fleet at cycle boundaries. Sessions
// that no other shard can absorb stay put and are reported in the
// result; the shard remains draining either way (Undrain reverses).
func (f *Fleet) Drain(shardID int) (apiv1.DrainResponse, error) {
	res := apiv1.DrainResponse{Shard: shardID}
	if shardID < 0 || shardID >= len(f.shards) {
		return res, fmt.Errorf("fleet: no shard %d", shardID)
	}
	sh := f.shards[shardID]
	sh.draining.Store(true)
	for _, s := range f.Sessions() {
		if s.Shard() != shardID {
			continue
		}
		if _, err := f.migrate(s, shardID); err != nil {
			res.Failed++
			res.Errors = append(res.Errors, fmt.Sprintf("%s: %v", s.id, err))
			continue
		}
		res.Moved++
	}
	f.logf("drain shard %d: moved %d, failed %d", shardID, res.Moved, res.Failed)
	return res, nil
}

// Undrain reopens a drained shard for placements.
func (f *Fleet) Undrain(shardID int) error {
	if shardID < 0 || shardID >= len(f.shards) {
		return fmt.Errorf("fleet: no shard %d", shardID)
	}
	f.shards[shardID].draining.Store(false)
	return nil
}

// ShardStatus assembles the /v1 shard view, including the SLO rollup
// over the shard's current sessions.
func (f *Fleet) ShardStatus(shardID int) (apiv1.Shard, error) {
	if shardID < 0 || shardID >= len(f.shards) {
		return apiv1.Shard{}, fmt.Errorf("fleet: no shard %d", shardID)
	}
	sh := f.shards[shardID]
	st := apiv1.Shard{
		ID:         sh.id,
		CPUs:       sh.cpus,
		Workers:    sh.pool.Workers(),
		Pinned:     sh.pinned,
		Draining:   sh.draining.Load(),
		Sessions:   sh.ctl.Len(),
		HeadroomUS: sh.ctl.Headroom(),
		EnvelopeUS: sh.ctl.Envelope(),
		Bounds:     sh.ctl.Sessions(),
	}
	st.SLO.TargetPer10k = 5 // telemetry's default; overwritten below from live sessions
	for _, s := range f.Sessions() {
		if s.Shard() != shardID {
			continue
		}
		tel := s.eng.Telemetry()
		if tel == nil {
			continue
		}
		slo := tel.SLO()
		st.SLO.Cycles += slo.TotalCycles
		st.SLO.Misses += slo.TotalMisses
		st.SLO.TargetPer10k = slo.TargetPer10k
		if slo.BurnRate1m > st.SLO.WorstBurn1m {
			st.SLO.WorstBurn1m = slo.BurnRate1m
		}
	}
	if st.SLO.Cycles > 0 {
		st.SLO.MissPer10k = float64(st.SLO.Misses) / float64(st.SLO.Cycles) * 1e4
	}
	st.SLO.Healthy = st.SLO.MissPer10k <= st.SLO.TargetPer10k
	return st, nil
}

// Registry assembles an OpenMetrics registry over every live session's
// telemetry collector (sessions carry their shard label themselves).
func (f *Fleet) Registry() *telemetry.Registry {
	r := telemetry.NewRegistry()
	for _, s := range f.Sessions() {
		if tel := s.eng.Telemetry(); tel != nil {
			r.Add(tel)
		}
	}
	return r
}

// Close stops every session and every shard pool. Idempotent.
func (f *Fleet) Close() {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	f.closed = true
	sessions := make([]*Session, 0, len(f.sessions))
	for _, s := range f.sessions {
		sessions = append(sessions, s)
	}
	f.sessions = make(map[string]*Session)
	f.mu.Unlock()
	for _, s := range sessions {
		s.close()
	}
	for _, sh := range f.shards {
		if sh.pool != nil {
			sh.pool.Close()
		}
	}
}
