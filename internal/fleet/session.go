package fleet

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"djstar/internal/admission"
	"djstar/internal/engine"
)

// Session is one fleet-hosted engine plus the goroutine that drives its
// cycle loop. The driver is the ONLY caller of Engine.Cycle, which
// keeps per-session cycle serialization and gives migrations a clean
// point between cycles: control closures (Rebind during a drain) run on
// the driver goroutine itself, so by construction no cycle is in
// flight when the executor is swapped.
type Session struct {
	id    string
	fleet *Fleet
	eng   *engine.Engine

	// rep is the admission load registered with the hosting shard's
	// controller; migrations re-register the same report elsewhere.
	rep     *admission.Report
	verdict string
	boundUS float64
	// headroom is Float64bits of the placement headroom — migrations
	// (driver-adjacent goroutines) update it while HTTP readers poll.
	headroom atomic.Uint64

	shard atomic.Int32

	ctl      chan func()
	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once

	m *engine.Metrics
}

// ID returns the fleet-scoped session ID (stable across migration).
func (s *Session) ID() string { return s.id }

// Engine exposes the session's engine.
func (s *Session) Engine() *engine.Engine { return s.eng }

// Shard returns the ID of the shard currently hosting the session.
func (s *Session) Shard() int { return int(s.shard.Load()) }

// Verdict, BoundUS and HeadroomUS echo the admission decision that
// placed the session (HeadroomUS refreshes on migration).
func (s *Session) Verdict() string  { return s.verdict }
func (s *Session) BoundUS() float64 { return s.boundUS }
func (s *Session) HeadroomUS() float64 {
	return math.Float64frombits(s.headroom.Load())
}

func (s *Session) setHeadroom(h float64) { s.headroom.Store(math.Float64bits(h)) }

// run is the driver loop: control closures between cycles, then one
// Cycle, then pacing to the packet clock (period <= 0 runs unpaced).
// When the loop has fallen far behind (a long migration, a descheduled
// host), the pacing clock resynchronizes instead of bursting to catch
// up.
func (s *Session) run(period time.Duration) {
	defer close(s.done)
	next := time.Now().Add(period)
	for {
		select {
		case <-s.stop:
			return
		case fn := <-s.ctl:
			fn()
			continue
		default:
		}
		s.eng.Cycle(s.m)
		if period > 0 {
			if d := time.Until(next); d > 0 {
				time.Sleep(d)
			} else if d < -16*period {
				next = time.Now()
			}
			next = next.Add(period)
		}
	}
}

// do runs fn on the driver goroutine between cycles and returns its
// error — the migration entry point. Returns ErrSessionClosed when the
// driver has stopped.
func (s *Session) do(fn func() error) error {
	errc := make(chan error, 1)
	wrapped := func() { errc <- fn() }
	select {
	case s.ctl <- wrapped:
	case <-s.done:
		return ErrSessionClosed
	}
	select {
	case err := <-errc:
		return err
	case <-s.done:
		return ErrSessionClosed
	}
}

// close stops the driver and the engine. Idempotent.
func (s *Session) close() {
	s.stopOnce.Do(func() { close(s.stop) })
	<-s.done
	s.eng.Close()
}
