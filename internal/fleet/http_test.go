package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"djstar/internal/apiv1"
	"djstar/internal/engine"
)

// TestControlPlane drives a two-shard fleet through the full /v1
// lifecycle over HTTP: create (with placement justification), list,
// snapshot, retune, edit, shard rollups, drain, undrain, destroy.
func TestControlPlane(t *testing.T) {
	f, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ts := httptest.NewServer(f.Handler())
	defer ts.Close()

	do := func(method, path string, body any, wantCode int, out any) {
		t.Helper()
		var rd io.Reader
		if body != nil {
			b, _ := json.Marshal(body)
			rd = bytes.NewReader(b)
		}
		req, err := http.NewRequest(method, ts.URL+path, rd)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != wantCode {
			t.Fatalf("%s %s = %d, want %d: %s", method, path, resp.StatusCode, wantCode, raw)
		}
		if out != nil {
			if err := json.Unmarshal(raw, out); err != nil {
				t.Fatalf("%s %s: bad JSON: %v: %s", method, path, err, raw)
			}
		}
	}

	// Create two sessions; the response must justify the placement.
	var created apiv1.CreateSessionResponse
	do("POST", "/v1/sessions", apiv1.CreateSessionRequest{}, http.StatusCreated, &created)
	if created.Session.ID == "" || created.Placement.Shard < 0 || len(created.Placement.Candidates) != 2 {
		t.Fatalf("create response %+v", created)
	}
	if created.Session.Verdict != "admit" {
		t.Fatalf("verdict = %q", created.Session.Verdict)
	}
	var second apiv1.CreateSessionResponse
	do("POST", "/v1/sessions", apiv1.CreateSessionRequest{ID: "named"}, http.StatusCreated, &second)
	if second.Session.ID != "named" {
		t.Fatalf("requested ID ignored: %+v", second.Session)
	}
	do("POST", "/v1/sessions", apiv1.CreateSessionRequest{ID: "named"}, http.StatusConflict, nil)

	var list apiv1.SessionList
	do("GET", "/v1/sessions", nil, http.StatusOK, &list)
	if len(list.Sessions) != 2 {
		t.Fatalf("listed %d sessions", len(list.Sessions))
	}
	do("GET", "/v1/sessions/nope", nil, http.StatusNotFound, nil)

	var snap engine.Snapshot
	do("GET", fmt.Sprintf("/v1/sessions/%s/snapshot", created.Session.ID), nil, http.StatusOK, &snap)
	if snap.SchemaVersion != engine.SnapshotSchemaVersion || snap.SessionID != created.Session.ID {
		t.Fatalf("snapshot v%d session %q", snap.SchemaVersion, snap.SessionID)
	}

	lf := 1.5
	var ret apiv1.RetuneResponse
	do("POST", fmt.Sprintf("/v1/sessions/%s/retune", created.Session.ID),
		apiv1.RetuneRequest{LoadFactor: &lf}, http.StatusOK, &ret)
	if !ret.OK || ret.LoadFactor != 1.5 {
		t.Fatalf("retune %+v", ret)
	}

	var edit apiv1.EditResponse
	do("POST", fmt.Sprintf("/v1/sessions/%s/edits", created.Session.ID),
		apiv1.EditRequest{Patch: "insert-delay:B:2"}, http.StatusOK, &edit)
	if !edit.OK || !edit.Staged {
		t.Fatalf("edit %+v", edit)
	}

	var shards apiv1.ShardList
	do("GET", "/v1/shards", nil, http.StatusOK, &shards)
	if len(shards.Shards) != 2 {
		t.Fatalf("%d shards", len(shards.Shards))
	}
	for _, sh := range shards.Shards {
		if sh.SLO.TargetPer10k != 5 {
			t.Fatalf("shard %d SLO target %v", sh.ID, sh.SLO.TargetPer10k)
		}
	}

	// Drain whichever shard hosts the first session; it must move.
	src := created.Session.Shard
	var dr apiv1.DrainResponse
	do("POST", fmt.Sprintf("/v1/shards/%d/drain", src), nil, http.StatusOK, &dr)
	if dr.Moved < 1 || dr.Failed != 0 {
		t.Fatalf("drain %+v", dr)
	}
	var moved apiv1.Session
	do("GET", "/v1/sessions/"+created.Session.ID, nil, http.StatusOK, &moved)
	if moved.Shard == src {
		t.Fatalf("session still on drained shard %d", src)
	}
	var shard apiv1.Shard
	do("GET", fmt.Sprintf("/v1/shards/%d", src), nil, http.StatusOK, &shard)
	if !shard.Draining || shard.Sessions != 0 {
		t.Fatalf("drained shard %+v", shard)
	}
	do("DELETE", fmt.Sprintf("/v1/shards/%d/drain", src), nil, http.StatusNoContent, nil)

	// Metrics exposition covers every session with its session label.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	body := string(raw)
	if !strings.Contains(body, `session="named"`) || !strings.Contains(body, "# EOF") {
		t.Fatalf("/metrics missing session labels or EOF:\n%.400s", body)
	}

	do("DELETE", "/v1/sessions/"+created.Session.ID, nil, http.StatusNoContent, nil)
	do("GET", "/v1/sessions/"+created.Session.ID, nil, http.StatusNotFound, nil)
	do("GET", "/v1/shards/9", nil, http.StatusNotFound, nil)
}
