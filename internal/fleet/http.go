package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"djstar/internal/admission"
	"djstar/internal/apiv1"
	"djstar/internal/engine"
	"djstar/internal/sched"
)

// Handler returns the fleet's /v1 control plane:
//
//	GET    /v1/sessions              – list every session (all shards)
//	POST   /v1/sessions              – create: body apiv1.CreateSessionRequest;
//	                                   201 with the placement decision,
//	                                   429 on analytical refusal
//	GET    /v1/sessions/{id}         – session summary
//	DELETE /v1/sessions/{id}         – stop and release the session
//	GET    /v1/sessions/{id}/snapshot – full engine.Snapshot (schema v4)
//	POST   /v1/sessions/{id}/edits   – stage a live graph edit
//	POST   /v1/sessions/{id}/retune  – load factor / turntable speeds
//	GET    /v1/shards                – shard list with SLO rollups
//	GET    /v1/shards/{id}           – one shard
//	POST   /v1/shards/{id}/drain     – migrate all sessions off the shard
//	DELETE /v1/shards/{id}/drain     – reopen the shard for placement
//	GET    /metrics                  – OpenMetrics over every session
//	/debug/pprof/                    – standard pprof
func (f *Fleet) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)

	mux.HandleFunc("GET /v1/sessions", func(w http.ResponseWriter, _ *http.Request) {
		list := apiv1.SessionList{Sessions: []apiv1.Session{}}
		for _, s := range f.Sessions() {
			list.Sessions = append(list.Sessions, f.v1Session(s))
		}
		fleetWriteJSON(w, http.StatusOK, list)
	})
	mux.HandleFunc("POST /v1/sessions", func(w http.ResponseWriter, r *http.Request) {
		var req apiv1.CreateSessionRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			fleetWriteJSON(w, http.StatusBadRequest, apiv1.Error{Error: "malformed body: " + err.Error()})
			return
		}
		spec := engine.SessionSpec{ID: req.ID, Fuse: req.Fuse, AdmissionMargin: req.AdmissionMargin}
		if req.Scale > 0 {
			g := f.cfg.Engine.Graph
			g.Scale = req.Scale
			spec.Graph = &g
		}
		s, placement, err := f.AddSession(spec)
		if err != nil {
			code := http.StatusInternalServerError
			switch {
			case errors.Is(err, admission.ErrOverBudget), errors.Is(err, sched.ErrPoolFull):
				// The fleet is analytically full — a load-shedding refusal,
				// not a server fault.
				code = http.StatusTooManyRequests
			case errors.Is(err, ErrDuplicate):
				code = http.StatusConflict
			}
			fleetWriteJSON(w, code, apiv1.Error{Error: err.Error()})
			return
		}
		fleetWriteJSON(w, http.StatusCreated, apiv1.CreateSessionResponse{
			Session:   f.v1Session(s),
			Placement: placement,
		})
	})
	withSession := func(h func(http.ResponseWriter, *http.Request, *Session)) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			s := f.Session(r.PathValue("id"))
			if s == nil {
				fleetWriteJSON(w, http.StatusNotFound, apiv1.Error{Error: fmt.Sprintf("no session %q", r.PathValue("id"))})
				return
			}
			h(w, r, s)
		}
	}
	mux.HandleFunc("GET /v1/sessions/{id}", withSession(func(w http.ResponseWriter, _ *http.Request, s *Session) {
		fleetWriteJSON(w, http.StatusOK, f.v1Session(s))
	}))
	mux.HandleFunc("DELETE /v1/sessions/{id}", withSession(func(w http.ResponseWriter, _ *http.Request, s *Session) {
		if err := f.RemoveSession(s.ID()); err != nil {
			fleetWriteJSON(w, http.StatusNotFound, apiv1.Error{Error: err.Error()})
			return
		}
		w.WriteHeader(http.StatusNoContent)
	}))
	mux.HandleFunc("GET /v1/sessions/{id}/snapshot", withSession(func(w http.ResponseWriter, _ *http.Request, s *Session) {
		fleetWriteJSON(w, http.StatusOK, s.Engine().Snapshot())
	}))
	mux.HandleFunc("POST /v1/sessions/{id}/edits", withSession(func(w http.ResponseWriter, r *http.Request, s *Session) {
		var req apiv1.EditRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Patch == "" {
			fleetWriteJSON(w, http.StatusBadRequest, apiv1.Error{Error: `body must be {"patch":"<spec>"}`})
			return
		}
		e := s.Engine()
		if err := e.ApplyPatch(req.Patch); err != nil {
			fleetWriteJSON(w, http.StatusUnprocessableEntity, apiv1.EditResponse{Epoch: e.PlanEpoch(), Error: err.Error()})
			return
		}
		fleetWriteJSON(w, http.StatusOK, apiv1.EditResponse{OK: true, Staged: true, Epoch: e.PlanEpoch()})
	}))
	mux.HandleFunc("POST /v1/sessions/{id}/retune", withSession(func(w http.ResponseWriter, r *http.Request, s *Session) {
		engine.RetuneHandler(s.Engine(), w, r)
	}))

	mux.HandleFunc("GET /v1/shards", func(w http.ResponseWriter, _ *http.Request) {
		list := apiv1.ShardList{}
		for _, sh := range f.shards {
			st, _ := f.ShardStatus(sh.id)
			list.Shards = append(list.Shards, st)
		}
		fleetWriteJSON(w, http.StatusOK, list)
	})
	withShard := func(h func(http.ResponseWriter, *http.Request, int)) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			id, err := strconv.Atoi(r.PathValue("id"))
			if err != nil || id < 0 || id >= len(f.shards) {
				fleetWriteJSON(w, http.StatusNotFound, apiv1.Error{Error: fmt.Sprintf("no shard %q", r.PathValue("id"))})
				return
			}
			h(w, r, id)
		}
	}
	mux.HandleFunc("GET /v1/shards/{id}", withShard(func(w http.ResponseWriter, _ *http.Request, id int) {
		st, err := f.ShardStatus(id)
		if err != nil {
			fleetWriteJSON(w, http.StatusNotFound, apiv1.Error{Error: err.Error()})
			return
		}
		fleetWriteJSON(w, http.StatusOK, st)
	}))
	mux.HandleFunc("POST /v1/shards/{id}/drain", withShard(func(w http.ResponseWriter, _ *http.Request, id int) {
		res, err := f.Drain(id)
		if err != nil {
			fleetWriteJSON(w, http.StatusNotFound, apiv1.Error{Error: err.Error()})
			return
		}
		code := http.StatusOK
		if res.Failed > 0 {
			code = http.StatusConflict
		}
		fleetWriteJSON(w, code, res)
	}))
	mux.HandleFunc("DELETE /v1/shards/{id}/drain", withShard(func(w http.ResponseWriter, _ *http.Request, id int) {
		if err := f.Undrain(id); err != nil {
			fleetWriteJSON(w, http.StatusNotFound, apiv1.Error{Error: err.Error()})
			return
		}
		w.WriteHeader(http.StatusNoContent)
	}))

	// The registry is rebuilt per scrape: sessions churn, and each
	// session's collector carries its own session+shard labels.
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		f.Registry().Handler().ServeHTTP(w, r)
	})
	return mux
}

// v1Session overlays fleet placement state on the engine's session view.
func (f *Fleet) v1Session(s *Session) apiv1.Session {
	v := engine.V1Session(s.Engine())
	v.Shard = s.Shard()
	v.Verdict = s.Verdict()
	v.BoundUS = s.BoundUS()
	v.HeadroomUS = s.HeadroomUS()
	return v
}

// Server is a running fleet control plane.
type Server struct {
	srv *http.Server
	ln  net.Listener
}

// Serve starts the control plane on addr (e.g. ":7070"; ":0" picks a
// free port, see Addr).
func (f *Fleet) Serve(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		srv: &http.Server{Handler: f.Handler(), ReadHeaderTimeout: 5 * time.Second},
		ln:  ln,
	}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down (the fleet keeps running).
func (s *Server) Close() error { return s.srv.Close() }

func fleetWriteJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
