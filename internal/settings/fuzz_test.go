package settings

import (
	"bytes"
	"strings"
	"testing"

	"djstar/internal/graph"
	"djstar/internal/sched"
)

// FuzzLoad ensures arbitrary JSON never panics the loader, and that
// anything it accepts can be applied to a session and re-saved.
func FuzzLoad(f *testing.F) {
	// Seed with a real settings file.
	cfg := graph.DefaultConfig()
	cfg.TrackBars = 2
	s, _, err := graph.BuildDJStar(cfg)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Capture(s, sched.NameBusyWait, 4).Save(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add(`{"version":1,"strategy":"ws","threads":2}`)
	f.Add(`{}`)
	f.Add(`[1,2,3]`)
	f.Add(`{"version":1,"strategy":"busy","threads":4,"decks":[{"tempo":1e308}]}`)

	f.Fuzz(func(t *testing.T, body string) {
		st, err := Load(strings.NewReader(body))
		if err != nil {
			return
		}
		// Accepted settings must apply cleanly (clamping handles extreme
		// values) and round-trip through Save.
		st.Apply(s)
		var out bytes.Buffer
		if err := st.Save(&out); err != nil {
			t.Fatalf("accepted settings failed to save: %v", err)
		}
	})
}
