package settings

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"djstar/internal/graph"
	"djstar/internal/sched"
)

func testSession(t *testing.T) *graph.Session {
	t.Helper()
	cfg := graph.DefaultConfig()
	cfg.TrackBars = 2
	s, _, err := graph.BuildDJStar(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCaptureApplyRoundTrip(t *testing.T) {
	src := testSession(t)
	src.Mix.SetCrossfade(0.3)
	src.Mix.SetMasterLevel(0.8)
	src.Decks[1].SetTempo(1.07)
	src.Decks[1].SetKeyLock(true)
	src.FX[2][0].SetMacro(0.66)
	src.Strips[3].SetFader(0.4)
	src.Strips[3].SetEQ(-10, 2, 5)
	src.Strips[0].SetCue(true)

	st := Capture(src, sched.NameBusyWait, 4)
	if err := st.Validate(); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := st.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}

	dst := testSession(t)
	loaded.Apply(dst)

	if dst.Mix.Crossfade() != 0.3 || dst.Mix.MasterLevel() != 0.8 {
		t.Fatalf("mixer state %v/%v", dst.Mix.Crossfade(), dst.Mix.MasterLevel())
	}
	if got := dst.Decks[1].Tempo(); math.Abs(got-1.07) > 1e-9 {
		t.Fatalf("tempo = %v", got)
	}
	if !dst.Decks[1].KeyLock() {
		t.Fatal("keylock lost")
	}
	if got := dst.FX[2][0].Macro(); math.Abs(got-0.66) > 1e-9 {
		t.Fatalf("macro = %v", got)
	}
	if got := dst.Strips[3].Fader(); math.Abs(got-0.4) > 1e-9 {
		t.Fatalf("fader = %v", got)
	}
	low, mid, high := dst.Strips[3].EQGains()
	if math.Abs(low+10) > 1e-9 || math.Abs(mid-2) > 1e-9 || math.Abs(high-5) > 1e-9 {
		t.Fatalf("EQ = %v/%v/%v", low, mid, high)
	}
	if !dst.Strips[0].Cue() {
		t.Fatal("cue lost")
	}
}

func TestLoadRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"garbage":       "not json",
		"unknown field": `{"version":1,"strategy":"busy","threads":4,"bogus":1}`,
		"bad version":   `{"version":99,"strategy":"busy","threads":4}`,
		"bad strategy":  `{"version":1,"strategy":"nope","threads":4}`,
		"bad threads":   `{"version":1,"strategy":"busy","threads":0}`,
	}
	for name, body := range cases {
		if _, err := Load(strings.NewReader(body)); err == nil {
			t.Fatalf("%s accepted", name)
		}
	}
}

func TestApplyToleratesShapeMismatch(t *testing.T) {
	// Settings captured from a 4-deck session applied to a 2-deck one.
	src := testSession(t)
	st := Capture(src, sched.NameWorkSteal, 2)

	cfg := graph.DefaultConfig()
	cfg.Decks = 2
	cfg.TrackBars = 2
	small, _, err := graph.BuildDJStar(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st.Apply(small) // must not panic

	// And the reverse: fewer persisted decks than session decks.
	st.Decks = st.Decks[:1]
	st.Channels = st.Channels[:1]
	st.Apply(src)
}

func TestStaticStrategyValidates(t *testing.T) {
	st := &Settings{Version: 1, Strategy: sched.NameStatic, Threads: 4}
	if err := st.Validate(); err != nil {
		t.Fatal(err)
	}
}
