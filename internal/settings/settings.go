// Package settings implements the Settings component of DJ Star's Core
// layer (paper Fig. 2): a serializable snapshot of the user-facing
// configuration — scheduler choice, mixer state, deck parameters, effect
// knobs — that can be saved to disk and re-applied to a live session.
package settings

import (
	"encoding/json"
	"fmt"
	"io"

	"djstar/internal/graph"
	"djstar/internal/sched"
)

// Settings is the persisted application state.
type Settings struct {
	// Version guards against incompatible files.
	Version int `json:"version"`

	// Strategy and Threads select the scheduler.
	Strategy string `json:"strategy"`
	Threads  int    `json:"threads"`

	// Mixer state.
	Crossfade   float64 `json:"crossfade"`
	MasterLevel float64 `json:"masterLevel"`

	// Decks and Channels are indexed together (deck d feeds channel d).
	Decks    []DeckSettings    `json:"decks"`
	Channels []ChannelSettings `json:"channels"`
}

// DeckSettings is one deck's persisted state.
type DeckSettings struct {
	Tempo   float64 `json:"tempo"`
	KeyLock bool    `json:"keyLock"`
	// FX holds macro/wet per effect unit.
	FX []FXSettings `json:"fx"`
}

// FXSettings is one effect unit's knob state.
type FXSettings struct {
	Macro float64 `json:"macro"`
	Wet   float64 `json:"wet"`
}

// ChannelSettings is one channel strip's persisted state.
type ChannelSettings struct {
	Fader  float64 `json:"fader"`
	EQLow  float64 `json:"eqLow"`
	EQMid  float64 `json:"eqMid"`
	EQHigh float64 `json:"eqHigh"`
	Cue    bool    `json:"cue"`
}

// CurrentVersion is the settings schema version this build writes.
const CurrentVersion = 1

// Capture snapshots a live session plus the scheduler selection.
func Capture(s *graph.Session, strategy string, threads int) *Settings {
	out := &Settings{
		Version:     CurrentVersion,
		Strategy:    strategy,
		Threads:     threads,
		Crossfade:   s.Mix.Crossfade(),
		MasterLevel: s.Mix.MasterLevel(),
	}
	for d, dk := range s.Decks {
		ds := DeckSettings{Tempo: dk.Tempo(), KeyLock: dk.KeyLock()}
		for _, fx := range s.FX[d] {
			ds.FX = append(ds.FX, FXSettings{Macro: fx.Macro()})
		}
		out.Decks = append(out.Decks, ds)

		low, mid, high := s.Strips[d].EQGains()
		out.Channels = append(out.Channels, ChannelSettings{
			Fader:  s.Strips[d].Fader(),
			EQLow:  low,
			EQMid:  mid,
			EQHigh: high,
			Cue:    s.Strips[d].Cue(),
		})
	}
	return out
}

// Apply writes the settings into a live session. Extra persisted decks or
// FX slots beyond what the session has are ignored; missing ones keep the
// session's current values.
func (st *Settings) Apply(s *graph.Session) {
	s.Mix.SetCrossfade(st.Crossfade)
	s.Mix.SetMasterLevel(st.MasterLevel)
	for d, ds := range st.Decks {
		if d >= len(s.Decks) {
			break
		}
		s.Decks[d].SetTempo(ds.Tempo)
		s.Decks[d].SetKeyLock(ds.KeyLock)
		for j, fx := range ds.FX {
			if j >= len(s.FX[d]) {
				break
			}
			s.FX[d][j].SetMacro(fx.Macro)
			if fx.Wet > 0 {
				s.FX[d][j].SetWet(fx.Wet)
			}
		}
	}
	for c, cs := range st.Channels {
		if c >= len(s.Strips) {
			break
		}
		s.Strips[c].SetFader(cs.Fader)
		s.Strips[c].SetEQ(cs.EQLow, cs.EQMid, cs.EQHigh)
		s.Strips[c].SetCue(cs.Cue)
	}
}

// Validate checks the loaded settings for usability.
func (st *Settings) Validate() error {
	if st.Version != CurrentVersion {
		return fmt.Errorf("settings: version %d, this build reads %d", st.Version, CurrentVersion)
	}
	valid := st.Strategy == sched.NameStatic || st.Strategy == sched.NameSleepScan
	for _, s := range sched.Strategies {
		if st.Strategy == s {
			valid = true
		}
	}
	if !valid {
		return fmt.Errorf("settings: unknown strategy %q", st.Strategy)
	}
	if st.Threads < 1 || st.Threads > 64 {
		return fmt.Errorf("settings: threads = %d out of range", st.Threads)
	}
	return nil
}

// Save writes the settings as indented JSON.
func (st *Settings) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(st); err != nil {
		return fmt.Errorf("settings: encoding: %w", err)
	}
	return nil
}

// Load reads and validates settings from JSON.
func Load(r io.Reader) (*Settings, error) {
	var st Settings
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&st); err != nil {
		return nil, fmt.Errorf("settings: decoding: %w", err)
	}
	if err := st.Validate(); err != nil {
		return nil, err
	}
	return &st, nil
}
