// Package middleware implements the Event Middleware layer of DJ Star's
// 4-layer architecture (paper Fig. 2): the User Interface "communicates
// with the Core subsystems indirectly via the Event Middleware". It is a
// topic-based publish/subscribe bus with bounded per-subscriber queues
// and a drop-oldest overflow policy, so a slow UI can never stall the
// audio engine: Publish never blocks.
package middleware

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Event is one message on the bus.
type Event struct {
	// Topic routes the event ("deck.position", "meter.master", ...).
	Topic string
	// Payload carries the topic-specific data.
	Payload any
	// Seq is the bus-wide publication sequence number.
	Seq uint64
	// At is the publication time.
	At time.Time
}

// TopicWildcard subscribes to every topic.
const TopicWildcard = "*"

// Subscription receives events for one topic (or all).
type Subscription struct {
	bus     *Bus
	topic   string
	ch      chan Event
	dropped atomic.Int64
	closed  atomic.Bool
}

// Events returns the receive channel. It is closed by Unsubscribe.
func (s *Subscription) Events() <-chan Event { return s.ch }

// Dropped returns how many events were discarded because the
// subscriber's queue was full (drop-oldest policy).
func (s *Subscription) Dropped() int64 { return s.dropped.Load() }

// Unsubscribe detaches the subscription and closes its channel.
func (s *Subscription) Unsubscribe() {
	if s.closed.Swap(true) {
		return
	}
	s.bus.remove(s)
	close(s.ch)
}

// Bus is the event middleware. The zero value is not usable; call New.
type Bus struct {
	mu   sync.RWMutex
	subs map[string][]*Subscription
	seq  atomic.Uint64
	// published counts all Publish calls (diagnostics).
	published atomic.Int64
	// drained accumulates the drop counts of unsubscribed subscriptions,
	// per topic, so TopicDrops stays cumulative across subscriber churn.
	drained map[string]int64
}

// New returns an empty bus.
func New() *Bus {
	return &Bus{
		subs:    make(map[string][]*Subscription),
		drained: make(map[string]int64),
	}
}

// Subscribe registers for a topic with the given queue depth (minimum 1).
// Use TopicWildcard to receive everything.
func (b *Bus) Subscribe(topic string, depth int) (*Subscription, error) {
	if topic == "" {
		return nil, fmt.Errorf("middleware: empty topic")
	}
	if depth < 1 {
		depth = 1
	}
	s := &Subscription{bus: b, topic: topic, ch: make(chan Event, depth)}
	b.mu.Lock()
	b.subs[topic] = append(b.subs[topic], s)
	b.mu.Unlock()
	return s, nil
}

// remove detaches s from the bus.
func (b *Bus) remove(s *Subscription) {
	b.mu.Lock()
	defer b.mu.Unlock()
	list := b.subs[s.topic]
	for i, cur := range list {
		if cur == s {
			b.subs[s.topic] = append(list[:i:i], list[i+1:]...)
			if d := s.dropped.Load(); d > 0 {
				b.drained[s.topic] += d
			}
			break
		}
	}
	if len(b.subs[s.topic]) == 0 {
		delete(b.subs, s.topic)
	}
}

// Publish delivers an event to all subscribers of the topic and of the
// wildcard. It never blocks: when a subscriber's queue is full the oldest
// queued event is dropped to make room (the UI wants the freshest meter
// value, not a backlog).
func (b *Bus) Publish(topic string, payload any) {
	ev := Event{
		Topic:   topic,
		Payload: payload,
		Seq:     b.seq.Add(1),
		At:      time.Now(),
	}
	b.published.Add(1)
	b.mu.RLock()
	defer b.mu.RUnlock()
	for _, s := range b.subs[topic] {
		deliver(s, ev)
	}
	if topic != TopicWildcard {
		for _, s := range b.subs[TopicWildcard] {
			deliver(s, ev)
		}
	}
}

// deliver enqueues with the drop-oldest policy.
func deliver(s *Subscription, ev Event) {
	if s.closed.Load() {
		return
	}
	for {
		select {
		case s.ch <- ev:
			return
		default:
		}
		// Full: drop the oldest and retry. Another consumer may race us
		// for the slot, hence the loop.
		select {
		case <-s.ch:
			s.dropped.Add(1)
		default:
		}
	}
}

// Published returns the total number of Publish calls.
func (b *Bus) Published() int64 { return b.published.Load() }

// TopicDrops returns the cumulative dropped-event count per topic:
// live subscriptions' counters plus those of already-unsubscribed ones.
// A growing count on a topic means its consumer cannot keep up — the
// bus sheds for it (by design), but the health report should say so.
func (b *Bus) TopicDrops() map[string]int64 {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make(map[string]int64, len(b.drained))
	for topic, d := range b.drained {
		out[topic] = d
	}
	for topic, list := range b.subs {
		for _, s := range list {
			if d := s.dropped.Load(); d > 0 {
				out[topic] += d
			}
		}
	}
	return out
}

// TotalDrops returns the cumulative dropped-event count across all topics.
func (b *Bus) TotalDrops() int64 {
	var total int64
	for _, d := range b.TopicDrops() {
		total += d
	}
	return total
}

// SubscriberCount returns the number of active subscriptions on a topic.
func (b *Bus) SubscriberCount(topic string) int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return len(b.subs[topic])
}

// Standard topics published by the application facade.
const (
	TopicDeckPosition = "deck.position"    // payload DeckPosition
	TopicMeterMaster  = "meter.master"     // payload MeterLevels
	TopicMeterDeck    = "meter.deck"       // payload MeterLevels
	TopicBeat         = "engine.beat"      // payload Beat
	TopicDeadlineMiss = "engine.miss"      // payload DeadlineMiss
	TopicControl      = "hw.control"       // payload hardware.ControlEvent
	TopicHealth       = "engine.health"    // payload HealthReport
	TopicFault        = "engine.fault"     // payload FaultEvent
	TopicDegrade      = "engine.degrade"   // payload DegradeEvent
	TopicTrace        = "engine.trace"     // payload ScheduleTrace
	TopicTopology     = "engine.topology"  // payload TopologyEvent
	TopicAdmission    = "engine.admission" // payload AdmissionEvent
)

// DeckPosition reports a deck's playhead (UI waveform cursor).
type DeckPosition struct {
	Deck    int
	Frames  float64
	Seconds float64
	Tempo   float64
	Playing bool
}

// MeterLevels is a meter reading for a deck or bus.
type MeterLevels struct {
	Source string
	Peak   float64
	RMS    float64
}

// Beat marks a beat boundary crossing on a deck.
type Beat struct {
	Deck  int
	Phase float64
}

// DeadlineMiss reports an APC that exceeded the packet deadline.
type DeadlineMiss struct {
	Cycle      int64
	DurationMS float64
	DeadlineMS float64
}

// HealthReport is the periodic engine-health event: governor state, fault
// counters, watchdog stalls, the engine's whole-run cycle accounting
// (from engine.Snapshot) and the bus's own per-topic drop totals.
type HealthReport struct {
	Cycle int64
	// Level is the governor's degradation level ("normal", "degraded1",
	// "degraded2", "critical").
	Level      string
	LoadFactor float64
	// WindowMissRate is the last governor window's deadline miss rate.
	WindowMissRate float64
	// FaultsRecovered counts node panics contained so far.
	FaultsRecovered int64
	// Quarantined lists nodes currently held in quarantine.
	Quarantined []string
	// Stalls counts watchdog detections so far.
	Stalls int64
	// GraphMeanMS and APCMeanMS are the engine's whole-run component
	// means; MissRate its whole-run deadline miss fraction.
	GraphMeanMS float64
	APCMeanMS   float64
	MissRate    float64
	// CritPathUS is the current measured critical-path length in
	// microseconds (0 when observability is off or warming up), and
	// Parallelism the graph's total-work/critical-path ratio.
	CritPathUS  float64
	Parallelism float64
	// BusDrops is the bus-wide cumulative dropped-event count, and
	// DropsByTopic its per-topic breakdown (only topics with drops).
	BusDrops     int64
	DropsByTopic map[string]int64
	// SLOBudgetRemaining is the unspent fraction of the rolling
	// deadline-miss budget (1 = clean, 0 = exhausted); SLOBurnRate1m the
	// one-minute burn rate; SLOExhausted reports the window is over
	// budget right now. All zero when telemetry is disabled.
	SLOBudgetRemaining float64
	SLOBurnRate1m      float64
	SLOExhausted       bool
	// PlanEpoch counts live topology edits adopted so far (0 = the
	// construction graph is unchanged); LastEdit summarizes the most
	// recent edit outcome ("" when none has been attempted).
	PlanEpoch uint64
	LastEdit  string
	// AdmissionVerdict is the schedulability gate's verdict ("admit",
	// "degraded"; "" when the gate is off); AdmissionBoundUS the latest
	// analytical response-time bound and AdmissionHeadroomUS the
	// envelope minus that bound, in µs (negative = predicted overload).
	AdmissionVerdict    string
	AdmissionBoundUS    float64
	AdmissionHeadroomUS float64
}

// AdmissionEvent reports one admission-control decision (published on
// TopicAdmission): the construction-time gate verdict, an edit-time
// schedulability rejection, or the predictive monitor flagging the
// recomputed bound over the envelope.
type AdmissionEvent struct {
	// Cycle is the engine cycle at decision time (0 at construction).
	Cycle uint64
	// Verdict is "admit", "degraded", "refuse", "edit-refused" or
	// "predict-overload".
	Verdict string
	// Reason is the analysis summary behind the decision.
	Reason string
	// BoundUS is the analytical bound and EnvelopeUS the deadline it was
	// held against, in µs.
	BoundUS    float64
	EnvelopeUS float64
	// PreShed names the degradation rung of an admit-degraded decision.
	PreShed string
	// Predicted marks the monitor's over-budget flags (cost drift pushed
	// the bound over before any miss).
	Predicted bool
}

// TopologyEvent reports one live graph-edit adoption decision (published
// on TopicTopology).
type TopologyEvent struct {
	// Cycle is the engine cycle at the adoption boundary.
	Cycle uint64
	// Epoch is the plan epoch after the decision.
	Epoch uint64
	// Nodes is the live graph's node count after the decision.
	Nodes int
	// Desc describes the edit ("insert-delay:A:2", "refuse", "3 ops").
	Desc string
	// Applied is false when the swap was refused and rolled back.
	Applied bool
}

// FaultEvent reports one contained node panic.
type FaultEvent struct {
	// Cycle is the scheduler cycle in which the node faulted.
	Cycle uint64
	Node  string
	// Worker is the worker slot that was running the node.
	Worker int
	// Err is the recovered panic value, stringified.
	Err string
	// Quarantined reports that this fault tripped the node's quarantine.
	Quarantined bool
}

// DegradeEvent reports a governor level transition.
type DegradeEvent struct {
	Cycle int64
	From  string
	To    string
}

// TraceNode is one node execution inside a ScheduleTrace.
type TraceNode struct {
	Name   string
	Worker int
	// StartUS and EndUS are microseconds from the cycle start.
	StartUS, EndUS float64
}

// ScheduleTrace is one sampled schedule realization (the paper's
// Fig. 11), published on TopicTrace for the UI's Gantt panel. The slice
// is owned by the subscriber (the publisher copies out of the engine's
// reused buffers).
type ScheduleTrace struct {
	// Cycle is the engine cycle the realization was sampled at.
	Cycle uint64
	// Workers is the scheduler's worker count.
	Workers int
	// MakespanUS is the realization's graph makespan in microseconds.
	MakespanUS float64
	Nodes      []TraceNode
}
