package middleware

import (
	"sync"
	"testing"
)

func TestSubscribePublishReceive(t *testing.T) {
	b := New()
	sub, err := b.Subscribe("a", 4)
	if err != nil {
		t.Fatal(err)
	}
	b.Publish("a", 42)
	b.Publish("other", 1) // not delivered
	ev := <-sub.Events()
	if ev.Topic != "a" || ev.Payload.(int) != 42 || ev.Seq == 0 {
		t.Fatalf("event = %+v", ev)
	}
	select {
	case ev := <-sub.Events():
		t.Fatalf("unexpected event %+v", ev)
	default:
	}
	if b.Published() != 2 {
		t.Fatalf("Published = %d", b.Published())
	}
}

func TestSubscribeValidation(t *testing.T) {
	b := New()
	if _, err := b.Subscribe("", 1); err == nil {
		t.Fatal("empty topic accepted")
	}
	s, err := b.Subscribe("x", -5) // depth clamps to 1
	if err != nil {
		t.Fatal(err)
	}
	b.Publish("x", 1)
	<-s.Events()
}

func TestWildcardReceivesEverything(t *testing.T) {
	b := New()
	all, _ := b.Subscribe(TopicWildcard, 8)
	b.Publish("a", 1)
	b.Publish("b", 2)
	got := []string{(<-all.Events()).Topic, (<-all.Events()).Topic}
	if got[0] != "a" || got[1] != "b" {
		t.Fatalf("wildcard got %v", got)
	}
}

func TestDropOldestPolicy(t *testing.T) {
	b := New()
	sub, _ := b.Subscribe("m", 2)
	for i := 0; i < 5; i++ {
		b.Publish("m", i)
	}
	// Queue depth 2: the two freshest events survive.
	first := <-sub.Events()
	second := <-sub.Events()
	if first.Payload.(int) != 3 || second.Payload.(int) != 4 {
		t.Fatalf("kept %v and %v, want 3 and 4", first.Payload, second.Payload)
	}
	if sub.Dropped() != 3 {
		t.Fatalf("Dropped = %d, want 3", sub.Dropped())
	}
}

func TestUnsubscribe(t *testing.T) {
	b := New()
	sub, _ := b.Subscribe("t", 1)
	if b.SubscriberCount("t") != 1 {
		t.Fatal("count wrong")
	}
	sub.Unsubscribe()
	sub.Unsubscribe() // idempotent
	if b.SubscriberCount("t") != 0 {
		t.Fatal("subscription not removed")
	}
	// Channel closed: receive yields zero value, ok == false.
	if _, ok := <-sub.Events(); ok {
		t.Fatal("channel not closed")
	}
	// Publishing after unsubscribe must not panic.
	b.Publish("t", 1)
}

func TestMultipleSubscribersSameTopic(t *testing.T) {
	b := New()
	s1, _ := b.Subscribe("t", 2)
	s2, _ := b.Subscribe("t", 2)
	b.Publish("t", "x")
	if (<-s1.Events()).Payload != "x" || (<-s2.Events()).Payload != "x" {
		t.Fatal("fan-out failed")
	}
	s1.Unsubscribe()
	b.Publish("t", "y")
	if (<-s2.Events()).Payload != "y" {
		t.Fatal("remaining subscriber starved")
	}
}

func TestPublishNeverBlocks(t *testing.T) {
	b := New()
	_, _ = b.Subscribe("hot", 1)
	done := make(chan struct{})
	go func() {
		// Nobody drains; 10k publishes must still complete immediately.
		for i := 0; i < 10000; i++ {
			b.Publish("hot", i)
		}
		close(done)
	}()
	<-done
}

func TestConcurrentPublishSubscribe(t *testing.T) {
	b := New()
	var consumers, producers sync.WaitGroup
	stop := make(chan struct{})

	// Producers publish until told to stop, so consumers never starve.
	for p := 0; p < 2; p++ {
		producers.Add(1)
		go func() {
			defer producers.Done()
			for i := 0; ; i++ {
				b.Publish("t", i)
				select {
				case <-stop:
					return
				default:
				}
			}
		}()
	}
	// Consumers subscribe, read a little, unsubscribe, repeatedly.
	for c := 0; c < 4; c++ {
		consumers.Add(1)
		go func() {
			defer consumers.Done()
			for i := 0; i < 50; i++ {
				sub, err := b.Subscribe("t", 4)
				if err != nil {
					t.Error(err)
					return
				}
				for j := 0; j < 3; j++ {
					<-sub.Events()
				}
				sub.Unsubscribe()
			}
		}()
	}
	consumers.Wait()
	close(stop)
	producers.Wait()
}

func TestSeqMonotone(t *testing.T) {
	b := New()
	sub, _ := b.Subscribe("s", 16)
	for i := 0; i < 10; i++ {
		b.Publish("s", i)
	}
	var last uint64
	for i := 0; i < 10; i++ {
		ev := <-sub.Events()
		if ev.Seq <= last {
			t.Fatalf("seq not monotone: %d after %d", ev.Seq, last)
		}
		last = ev.Seq
	}
}

func TestTopicDropsAggregate(t *testing.T) {
	b := New()
	s1, _ := b.Subscribe("a", 1)
	s2, _ := b.Subscribe("a", 1)
	s3, _ := b.Subscribe("b", 1)
	for i := 0; i < 5; i++ {
		b.Publish("a", i)
		b.Publish("b", i)
	}
	// Depth-1 queues: each subscription kept 1 of 5 -> 4 drops apiece.
	drops := b.TopicDrops()
	if drops["a"] != 8 || drops["b"] != 4 {
		t.Fatalf("drops = %v, want a:8 b:4", drops)
	}
	if got := b.TotalDrops(); got != 12 {
		t.Fatalf("TotalDrops = %d, want 12", got)
	}
	// Unsubscribing must not lose the counts: they fold into the bus.
	s1.Unsubscribe()
	s2.Unsubscribe()
	s3.Unsubscribe()
	drops = b.TopicDrops()
	if drops["a"] != 8 || drops["b"] != 4 {
		t.Fatalf("drops after unsubscribe = %v, want a:8 b:4", drops)
	}
	// New drops on a reused topic keep accumulating.
	s4, _ := b.Subscribe("a", 1)
	b.Publish("a", 99)
	b.Publish("a", 100)
	if drops = b.TopicDrops(); drops["a"] != 9 {
		t.Fatalf("drops after new subscriber = %v, want a:9", drops)
	}
	s4.Unsubscribe()
}
