// Package audio provides the fundamental sample-buffer types and packet
// clock arithmetic used throughout the DJ Star reproduction.
//
// DJ Star processes audio in fixed-size packets of 128 samples at a
// 44.1 kHz sampling rate, which means the sound card requests a fresh
// packet every 2.902 ms (344.53 Hz). Every subsystem in this repository
// operates on these packets; the types here are deliberately small and
// allocation-free in their hot paths.
package audio

import (
	"fmt"
	"math"
	"time"
)

// Standard DJ Star stream parameters (paper §III-A).
const (
	// SampleRate is the output sampling rate in Hz.
	SampleRate = 44100

	// PacketSize is the number of frames per audio packet (buffer size BS).
	PacketSize = 128
)

// PacketPeriod returns the wall-clock duration of one packet of n frames at
// rate hz: the hard deadline for producing the next packet.
func PacketPeriod(n, hz int) time.Duration {
	return time.Duration(float64(n) / float64(hz) * float64(time.Second))
}

// StandardPacketPeriod is the DJ Star deadline: 128 frames at 44.1 kHz,
// approximately 2.902 ms.
var StandardPacketPeriod = PacketPeriod(PacketSize, SampleRate)

// PacketRate returns the packet request frequency in Hz for n frames at
// sampling rate hz (344.53 Hz for the standard configuration).
func PacketRate(n, hz int) float64 {
	return float64(hz) / float64(n)
}

// Buffer is a mono audio packet: a fixed-length slice of float64 samples in
// the nominal range [-1, 1]. Code that processes Buffers must not change
// their length.
type Buffer []float64

// NewBuffer allocates a zeroed mono buffer of n frames.
func NewBuffer(n int) Buffer { return make(Buffer, n) }

// Zero clears the buffer in place.
func (b Buffer) Zero() {
	for i := range b {
		b[i] = 0
	}
}

// CopyFrom copies src into b. The buffers must have equal length.
func (b Buffer) CopyFrom(src Buffer) {
	if len(b) != len(src) {
		panic(fmt.Sprintf("audio: CopyFrom length mismatch %d != %d", len(b), len(src)))
	}
	copy(b, src)
}

// AddFrom mixes src into b sample-wise with the given linear gain.
func (b Buffer) AddFrom(src Buffer, gain float64) {
	n := min(len(b), len(src))
	for i := 0; i < n; i++ {
		b[i] += src[i] * gain
	}
}

// Scale multiplies every sample by the linear gain g.
func (b Buffer) Scale(g float64) {
	for i := range b {
		b[i] *= g
	}
}

// Peak returns the largest absolute sample value.
func (b Buffer) Peak() float64 {
	p := 0.0
	for _, s := range b {
		if a := math.Abs(s); a > p {
			p = a
		}
	}
	return p
}

// RMS returns the root-mean-square level of the buffer, 0 for an empty one.
func (b Buffer) RMS() float64 {
	if len(b) == 0 {
		return 0
	}
	sum := 0.0
	for _, s := range b {
		sum += s * s
	}
	return math.Sqrt(sum / float64(len(b)))
}

// Energy returns the sum of squared samples.
func (b Buffer) Energy() float64 {
	sum := 0.0
	for _, s := range b {
		sum += s * s
	}
	return sum
}

// Stereo is a two-channel audio packet with independent left and right
// buffers of equal length.
type Stereo struct {
	L, R Buffer
}

// NewStereo allocates a zeroed stereo packet of n frames per channel.
func NewStereo(n int) Stereo {
	return Stereo{L: NewBuffer(n), R: NewBuffer(n)}
}

// Len returns the number of frames per channel.
func (s Stereo) Len() int { return len(s.L) }

// Zero clears both channels.
func (s Stereo) Zero() {
	s.L.Zero()
	s.R.Zero()
}

// CopyFrom copies both channels from src.
func (s Stereo) CopyFrom(src Stereo) {
	s.L.CopyFrom(src.L)
	s.R.CopyFrom(src.R)
}

// AddFrom mixes src into s with the given linear gain on both channels.
func (s Stereo) AddFrom(src Stereo, gain float64) {
	s.L.AddFrom(src.L, gain)
	s.R.AddFrom(src.R, gain)
}

// Scale multiplies both channels by the linear gain g.
func (s Stereo) Scale(g float64) {
	s.L.Scale(g)
	s.R.Scale(g)
}

// Peak returns the largest absolute sample over both channels.
func (s Stereo) Peak() float64 {
	return math.Max(s.L.Peak(), s.R.Peak())
}

// RMS returns the combined RMS level over both channels.
func (s Stereo) RMS() float64 {
	n := len(s.L) + len(s.R)
	if n == 0 {
		return 0
	}
	return math.Sqrt((s.L.Energy() + s.R.Energy()) / float64(n))
}

// Mono mixes the stereo packet down into dst as (L+R)/2.
// dst must have the same frame count.
func (s Stereo) Mono(dst Buffer) {
	if len(dst) != len(s.L) {
		panic(fmt.Sprintf("audio: Mono length mismatch %d != %d", len(dst), len(s.L)))
	}
	for i := range dst {
		dst[i] = 0.5 * (s.L[i] + s.R[i])
	}
}

// DBToLinear converts a decibel value to a linear gain factor.
// 0 dB is unity, -inf dB is 0.
func DBToLinear(db float64) float64 {
	if math.IsInf(db, -1) {
		return 0
	}
	return math.Pow(10, db/20)
}

// LinearToDB converts a linear gain factor to decibels.
// A gain of 0 returns -inf.
func LinearToDB(g float64) float64 {
	if g <= 0 {
		return math.Inf(-1)
	}
	return 20 * math.Log10(g)
}

// Clamp limits x to the range [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// FramesToDuration converts a frame count at rate hz to wall-clock time.
func FramesToDuration(frames, hz int) time.Duration {
	return time.Duration(float64(frames) / float64(hz) * float64(time.Second))
}

// DurationToFrames converts wall-clock time to a frame count at rate hz,
// rounding to nearest.
func DurationToFrames(d time.Duration, hz int) int {
	return int(math.Round(d.Seconds() * float64(hz)))
}
