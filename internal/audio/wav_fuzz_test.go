package audio

import (
	"bytes"
	"testing"
)

// FuzzDecodeWAV ensures the WAV parser never panics and never returns
// audio with non-finite samples, whatever bytes it is fed.
func FuzzDecodeWAV(f *testing.F) {
	// Seed with a valid file and near-miss corruptions of it.
	var buf seekBuffer
	w, err := NewWAVWriter(&buf, 44100)
	if err != nil {
		f.Fatal(err)
	}
	s := NewStereo(64)
	for i := range s.L {
		s.L[i] = float64(i%3) * 0.3
		s.R[i] = -s.L[i]
	}
	if err := w.WritePacket(s); err != nil {
		f.Fatal(err)
	}
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.data)
	f.Add(buf.data[:20])
	f.Add([]byte("RIFF1234WAVEfmt "))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		clip, rate, err := DecodeWAV(bytes.NewReader(data))
		if err != nil {
			return // rejection is always fine
		}
		if rate < 0 {
			t.Fatalf("negative rate %d", rate)
		}
		for i := 0; i < clip.Len(); i++ {
			l, r := clip.L[i], clip.R[i]
			if l < -1.01 || l > 1.01 || r < -1.01 || r > 1.01 {
				t.Fatalf("sample %d out of range: %v/%v", i, l, r)
			}
		}
	})
}
