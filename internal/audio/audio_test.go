package audio

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestPacketPeriodStandard(t *testing.T) {
	got := StandardPacketPeriod
	secs := 128.0 / 44100.0
	want := time.Duration(secs * float64(time.Second))
	if got != want {
		t.Fatalf("StandardPacketPeriod = %v, want %v", got, want)
	}
	// Paper: "one packet every 2.9 ms".
	if got < 2800*time.Microsecond || got > 3000*time.Microsecond {
		t.Fatalf("StandardPacketPeriod = %v, want ~2.9ms", got)
	}
}

func TestPacketRateStandard(t *testing.T) {
	got := PacketRate(PacketSize, SampleRate)
	// Paper §III-A: 344.53 Hz.
	if math.Abs(got-344.53) > 0.01 {
		t.Fatalf("PacketRate = %v, want 344.53", got)
	}
}

func TestBufferZeroAndScale(t *testing.T) {
	b := Buffer{1, -2, 3}
	b.Scale(0.5)
	if b[0] != 0.5 || b[1] != -1 || b[2] != 1.5 {
		t.Fatalf("Scale gave %v", b)
	}
	b.Zero()
	for i, s := range b {
		if s != 0 {
			t.Fatalf("Zero left b[%d]=%v", i, s)
		}
	}
}

func TestBufferCopyFromMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("CopyFrom with mismatched lengths did not panic")
		}
	}()
	Buffer{1, 2}.CopyFrom(Buffer{1})
}

func TestBufferAddFrom(t *testing.T) {
	dst := Buffer{1, 1, 1}
	dst.AddFrom(Buffer{1, 2, 3}, 2)
	want := Buffer{3, 5, 7}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("AddFrom gave %v, want %v", dst, want)
		}
	}
}

func TestPeakAndRMS(t *testing.T) {
	b := Buffer{0.5, -1.0, 0.25}
	if p := b.Peak(); p != 1.0 {
		t.Fatalf("Peak = %v, want 1", p)
	}
	want := math.Sqrt((0.25 + 1 + 0.0625) / 3)
	if r := b.RMS(); math.Abs(r-want) > 1e-12 {
		t.Fatalf("RMS = %v, want %v", r, want)
	}
	if r := (Buffer{}).RMS(); r != 0 {
		t.Fatalf("empty RMS = %v, want 0", r)
	}
}

func TestStereoMonoDownmix(t *testing.T) {
	s := NewStereo(3)
	copy(s.L, []float64{1, 0, -1})
	copy(s.R, []float64{0, 1, -1})
	m := NewBuffer(3)
	s.Mono(m)
	want := []float64{0.5, 0.5, -1}
	for i := range want {
		if m[i] != want[i] {
			t.Fatalf("Mono gave %v, want %v", m, want)
		}
	}
}

func TestStereoOps(t *testing.T) {
	a := NewStereo(2)
	b := NewStereo(2)
	copy(b.L, []float64{1, 2})
	copy(b.R, []float64{-1, -2})
	a.AddFrom(b, 0.5)
	if a.L[1] != 1 || a.R[1] != -1 {
		t.Fatalf("AddFrom gave %+v", a)
	}
	a.CopyFrom(b)
	if a.L[0] != 1 || a.R[0] != -1 {
		t.Fatalf("CopyFrom gave %+v", a)
	}
	if p := a.Peak(); p != 2 {
		t.Fatalf("Peak = %v, want 2", p)
	}
	a.Scale(0)
	if a.RMS() != 0 {
		t.Fatalf("RMS after zero scale = %v", a.RMS())
	}
	a.Zero()
	if a.Peak() != 0 {
		t.Fatal("Zero did not clear")
	}
}

func TestDBConversionRoundTrip(t *testing.T) {
	f := func(db float64) bool {
		db = math.Mod(db, 120) // keep in a sane range
		g := DBToLinear(db)
		back := LinearToDB(g)
		return math.Abs(back-db) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDBEdgeCases(t *testing.T) {
	if g := DBToLinear(math.Inf(-1)); g != 0 {
		t.Fatalf("DBToLinear(-inf) = %v, want 0", g)
	}
	if db := LinearToDB(0); !math.IsInf(db, -1) {
		t.Fatalf("LinearToDB(0) = %v, want -inf", db)
	}
	if db := LinearToDB(-1); !math.IsInf(db, -1) {
		t.Fatalf("LinearToDB(-1) = %v, want -inf", db)
	}
	if g := DBToLinear(0); g != 1 {
		t.Fatalf("DBToLinear(0) = %v, want 1", g)
	}
}

func TestClamp(t *testing.T) {
	cases := []struct{ x, lo, hi, want float64 }{
		{5, 0, 1, 1},
		{-5, 0, 1, 0},
		{0.5, 0, 1, 0.5},
		{0, 0, 0, 0},
	}
	for _, c := range cases {
		if got := Clamp(c.x, c.lo, c.hi); got != c.want {
			t.Fatalf("Clamp(%v,%v,%v) = %v, want %v", c.x, c.lo, c.hi, got, c.want)
		}
	}
}

func TestFrameDurationRoundTrip(t *testing.T) {
	f := func(n uint16) bool {
		frames := int(n)
		d := FramesToDuration(frames, SampleRate)
		return DurationToFrames(d, SampleRate) == frames
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBufferOpsDoNotAllocate(t *testing.T) {
	b := NewBuffer(PacketSize)
	src := NewBuffer(PacketSize)
	allocs := testing.AllocsPerRun(100, func() {
		b.Zero()
		b.AddFrom(src, 0.5)
		b.Scale(0.9)
		_ = b.Peak()
		_ = b.RMS()
	})
	if allocs != 0 {
		t.Fatalf("buffer hot path allocates %v per run, want 0", allocs)
	}
}
