package audio

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// WAV encoding for the record path (RecordBuffer in Fig. 3 feeds a
// recorder in the real application). 16-bit PCM, interleaved stereo.

// WAVWriter streams stereo packets into a RIFF/WAVE container. Because
// the total length is unknown until Close, it requires an io.WriteSeeker
// to patch the header sizes at the end.
type WAVWriter struct {
	w      io.WriteSeeker
	rate   int
	frames int64
	closed bool
}

// NewWAVWriter writes a 16-bit stereo WAV header for the given sampling
// rate and returns a writer ready to receive packets.
func NewWAVWriter(w io.WriteSeeker, rate int) (*WAVWriter, error) {
	if rate <= 0 {
		return nil, fmt.Errorf("audio: invalid WAV sample rate %d", rate)
	}
	ww := &WAVWriter{w: w, rate: rate}
	if err := ww.writeHeader(0); err != nil {
		return nil, err
	}
	return ww, nil
}

func (ww *WAVWriter) writeHeader(dataBytes uint32) error {
	const (
		channels      = 2
		bitsPerSample = 16
	)
	blockAlign := channels * bitsPerSample / 8
	byteRate := uint32(ww.rate * blockAlign)

	var hdr [44]byte
	copy(hdr[0:4], "RIFF")
	binary.LittleEndian.PutUint32(hdr[4:8], 36+dataBytes)
	copy(hdr[8:12], "WAVE")
	copy(hdr[12:16], "fmt ")
	binary.LittleEndian.PutUint32(hdr[16:20], 16) // PCM fmt chunk size
	binary.LittleEndian.PutUint16(hdr[20:22], 1)  // PCM
	binary.LittleEndian.PutUint16(hdr[22:24], channels)
	binary.LittleEndian.PutUint32(hdr[24:28], uint32(ww.rate))
	binary.LittleEndian.PutUint32(hdr[28:32], byteRate)
	binary.LittleEndian.PutUint16(hdr[32:34], uint16(blockAlign))
	binary.LittleEndian.PutUint16(hdr[34:36], bitsPerSample)
	copy(hdr[36:40], "data")
	binary.LittleEndian.PutUint32(hdr[40:44], dataBytes)

	if _, err := ww.w.Seek(0, io.SeekStart); err != nil {
		return err
	}
	_, err := ww.w.Write(hdr[:])
	return err
}

// WritePacket appends one stereo packet, clamping samples to [-1, 1].
func (ww *WAVWriter) WritePacket(s Stereo) error {
	if ww.closed {
		return fmt.Errorf("audio: write to closed WAVWriter")
	}
	n := s.Len()
	buf := make([]byte, n*4)
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint16(buf[i*4:], uint16(pcm16(s.L[i])))
		binary.LittleEndian.PutUint16(buf[i*4+2:], uint16(pcm16(s.R[i])))
	}
	if _, err := ww.w.Write(buf); err != nil {
		return err
	}
	ww.frames += int64(n)
	return nil
}

// Frames returns the number of frames written so far.
func (ww *WAVWriter) Frames() int64 { return ww.frames }

// Close patches the RIFF header with the final sizes. The underlying
// writer is not closed.
func (ww *WAVWriter) Close() error {
	if ww.closed {
		return nil
	}
	ww.closed = true
	dataBytes := uint32(ww.frames * 4)
	if err := ww.writeHeader(dataBytes); err != nil {
		return err
	}
	_, err := ww.w.Seek(0, io.SeekEnd)
	return err
}

// pcm16 converts a float sample to a clamped 16-bit PCM value.
func pcm16(x float64) int16 {
	x = Clamp(x, -1, 1)
	v := math.Round(x * 32767)
	return int16(v)
}

// DecodeWAV parses a 16-bit stereo PCM WAV produced by WAVWriter (or any
// compatible encoder) and returns the audio and sampling rate. It is used
// by tests and by track-import tooling; it intentionally supports only
// the canonical 44-byte-header layout plus extra trailing chunks.
func DecodeWAV(r io.Reader) (Stereo, int, error) {
	var hdr [44]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Stereo{}, 0, fmt.Errorf("audio: short WAV header: %w", err)
	}
	if string(hdr[0:4]) != "RIFF" || string(hdr[8:12]) != "WAVE" || string(hdr[12:16]) != "fmt " {
		return Stereo{}, 0, fmt.Errorf("audio: not a RIFF/WAVE file")
	}
	if binary.LittleEndian.Uint16(hdr[20:22]) != 1 {
		return Stereo{}, 0, fmt.Errorf("audio: not PCM")
	}
	if ch := binary.LittleEndian.Uint16(hdr[22:24]); ch != 2 {
		return Stereo{}, 0, fmt.Errorf("audio: %d channels, want stereo", ch)
	}
	if bits := binary.LittleEndian.Uint16(hdr[34:36]); bits != 16 {
		return Stereo{}, 0, fmt.Errorf("audio: %d-bit samples, want 16", bits)
	}
	rate := int(binary.LittleEndian.Uint32(hdr[24:28]))
	if string(hdr[36:40]) != "data" {
		return Stereo{}, 0, fmt.Errorf("audio: missing data chunk")
	}
	dataBytes := binary.LittleEndian.Uint32(hdr[40:44])

	raw := make([]byte, dataBytes)
	if _, err := io.ReadFull(r, raw); err != nil {
		return Stereo{}, 0, fmt.Errorf("audio: short WAV data: %w", err)
	}
	frames := int(dataBytes / 4)
	out := NewStereo(frames)
	for i := 0; i < frames; i++ {
		l := int16(binary.LittleEndian.Uint16(raw[i*4:]))
		rr := int16(binary.LittleEndian.Uint16(raw[i*4+2:]))
		out.L[i] = float64(l) / 32767
		out.R[i] = float64(rr) / 32767
	}
	return out, rate, nil
}
