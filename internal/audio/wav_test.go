package audio

import (
	"bytes"
	"io"
	"math"
	"testing"
)

// seekBuffer implements io.WriteSeeker over a byte slice for tests.
type seekBuffer struct {
	data []byte
	pos  int
}

func (b *seekBuffer) Write(p []byte) (int, error) {
	if need := b.pos + len(p); need > len(b.data) {
		b.data = append(b.data, make([]byte, need-len(b.data))...)
	}
	copy(b.data[b.pos:], p)
	b.pos += len(p)
	return len(p), nil
}

func (b *seekBuffer) Seek(offset int64, whence int) (int64, error) {
	switch whence {
	case io.SeekStart:
		b.pos = int(offset)
	case io.SeekCurrent:
		b.pos += int(offset)
	case io.SeekEnd:
		b.pos = len(b.data) + int(offset)
	}
	return int64(b.pos), nil
}

func TestWAVRoundTrip(t *testing.T) {
	var buf seekBuffer
	w, err := NewWAVWriter(&buf, SampleRate)
	if err != nil {
		t.Fatal(err)
	}
	src := NewStereo(300)
	for i := range src.L {
		src.L[i] = math.Sin(2 * math.Pi * float64(i) / 50)
		src.R[i] = -src.L[i] / 2
	}
	// Write in two packets.
	half := Stereo{L: src.L[:150], R: src.R[:150]}
	rest := Stereo{L: src.L[150:], R: src.R[150:]}
	if err := w.WritePacket(half); err != nil {
		t.Fatal(err)
	}
	if err := w.WritePacket(rest); err != nil {
		t.Fatal(err)
	}
	if w.Frames() != 300 {
		t.Fatalf("Frames = %d", w.Frames())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil { // idempotent
		t.Fatal(err)
	}

	got, rate, err := DecodeWAV(bytes.NewReader(buf.data))
	if err != nil {
		t.Fatal(err)
	}
	if rate != SampleRate {
		t.Fatalf("rate = %d", rate)
	}
	if got.Len() != 300 {
		t.Fatalf("decoded %d frames", got.Len())
	}
	for i := 0; i < 300; i++ {
		if math.Abs(got.L[i]-src.L[i]) > 1.0/32000 {
			t.Fatalf("L[%d] = %v, want %v", i, got.L[i], src.L[i])
		}
		if math.Abs(got.R[i]-src.R[i]) > 1.0/32000 {
			t.Fatalf("R[%d] = %v, want %v", i, got.R[i], src.R[i])
		}
	}
}

func TestWAVWriterValidation(t *testing.T) {
	var buf seekBuffer
	if _, err := NewWAVWriter(&buf, 0); err == nil {
		t.Fatal("rate 0 accepted")
	}
	w, _ := NewWAVWriter(&buf, 44100)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.WritePacket(NewStereo(4)); err == nil {
		t.Fatal("write after close accepted")
	}
}

func TestWAVClampsClipping(t *testing.T) {
	var buf seekBuffer
	w, _ := NewWAVWriter(&buf, 44100)
	s := NewStereo(2)
	s.L[0], s.R[0] = 5, -5
	s.L[1], s.R[1] = 0.5, -0.5
	if err := w.WritePacket(s); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, _, err := DecodeWAV(bytes.NewReader(buf.data))
	if err != nil {
		t.Fatal(err)
	}
	if got.L[0] < 0.999 || got.R[0] > -0.999 {
		t.Fatalf("clipping not clamped: %v %v", got.L[0], got.R[0])
	}
}

func TestDecodeWAVRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("not a wav file at all, just text padding!!!!"),
	}
	for i, c := range cases {
		if _, _, err := DecodeWAV(bytes.NewReader(c)); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
	// Valid header but truncated data.
	var buf seekBuffer
	w, _ := NewWAVWriter(&buf, 44100)
	_ = w.WritePacket(NewStereo(10))
	_ = w.Close()
	if _, _, err := DecodeWAV(bytes.NewReader(buf.data[:50])); err == nil {
		t.Fatal("truncated data accepted")
	}
}

func TestPCM16Symmetry(t *testing.T) {
	if pcm16(1) != 32767 || pcm16(-1) != -32767 || pcm16(0) != 0 {
		t.Fatalf("pcm16 endpoints: %d %d %d", pcm16(1), pcm16(-1), pcm16(0))
	}
}
