// Package ui implements the User Interface layer of the paper's Fig. 2
// ("GUI", "Waveform", "Devices Representation") as a terminal dashboard.
// Faithful to the architecture, it never touches the Core directly: it
// consumes middleware events and renders from its own view model, so a
// slow or stalled UI cannot perturb the 2.9 ms audio cycle.
package ui

import (
	"fmt"
	"strings"
	"sync"

	"djstar/internal/audio"
	"djstar/internal/library"
	"djstar/internal/middleware"
)

// DeckView is the UI's model of one deck.
type DeckView struct {
	Seconds float64
	Tempo   float64
	Playing bool
	// BeatFlash counts down after a beat event to blink the beat lamp.
	BeatFlash int
}

// Model is the UI view model, updated from bus events.
type Model struct {
	mu     sync.Mutex
	decks  []DeckView
	master middleware.MeterLevels
	misses int
	ctrl   string // last control move, for the status line
	events int64

	// Health panel state.
	health    middleware.HealthReport
	hasHealth bool
	faults    int    // fault events seen
	lastFault string // most recent faulted node
	degrade   string // most recent governor transition "from→to"
	topology  string // most recent live graph edit outcome
	admission string // most recent admission decision

	// Gantt panel state: the latest sampled schedule realization.
	trace    middleware.ScheduleTrace
	hasTrace bool
}

// NewModel returns a view model for the given deck count.
func NewModel(decks int) *Model {
	return &Model{decks: make([]DeckView, decks)}
}

// Apply folds one middleware event into the model. Unknown topics are
// ignored (forward compatibility).
func (m *Model) Apply(ev middleware.Event) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.events++
	switch p := ev.Payload.(type) {
	case middleware.DeckPosition:
		if p.Deck >= 0 && p.Deck < len(m.decks) {
			d := &m.decks[p.Deck]
			d.Seconds = p.Seconds
			d.Tempo = p.Tempo
			d.Playing = p.Playing
		}
	case middleware.Beat:
		if p.Deck >= 0 && p.Deck < len(m.decks) {
			m.decks[p.Deck].BeatFlash = 3
		}
	case middleware.MeterLevels:
		if p.Source == "master" {
			m.master = p
		}
	case middleware.DeadlineMiss:
		m.misses++
	case middleware.HealthReport:
		m.health = p
		m.hasHealth = true
	case middleware.FaultEvent:
		m.faults++
		m.lastFault = p.Node
	case middleware.DegradeEvent:
		m.degrade = p.From + "→" + p.To
	case middleware.ScheduleTrace:
		m.trace = p
		m.hasTrace = true
	case middleware.TopologyEvent:
		if p.Applied {
			m.topology = fmt.Sprintf("repatched %s (%d nodes)", p.Desc, p.Nodes)
		} else {
			m.topology = "repatch rolled back: " + p.Desc
		}
	case middleware.AdmissionEvent:
		m.admission = fmt.Sprintf("%s %.0f/%.0fµs", p.Verdict, p.BoundUS, p.EnvelopeUS)
		if p.PreShed != "" {
			m.admission += " (" + p.PreShed + ")"
		}
	default:
		if ev.Topic == middleware.TopicControl {
			m.ctrl = fmt.Sprint(ev.Payload)
		}
	}
}

// Drain applies every queued event from a subscription without blocking.
func (m *Model) Drain(sub *middleware.Subscription) {
	for {
		select {
		case ev, ok := <-sub.Events():
			if !ok {
				return
			}
			m.Apply(ev)
		default:
			return
		}
	}
}

// Events returns how many events the model has consumed.
func (m *Model) Events() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.events
}

// Render draws the dashboard. Width controls the meter bar length.
func (m *Model) Render(width int) string {
	if width < 20 {
		width = 20
	}
	m.mu.Lock()
	defer m.mu.Unlock()

	var b strings.Builder
	for i := range m.decks {
		d := &m.decks[i]
		state := "❚❚"
		if d.Playing {
			state = "▶ "
		}
		lamp := " "
		if d.BeatFlash > 0 {
			lamp = "●"
			d.BeatFlash--
		}
		fmt.Fprintf(&b, "deck %c %s %s %7.1fs  %5.2fx\n",
			'A'+i, state, lamp, d.Seconds, d.Tempo)
	}
	fmt.Fprintf(&b, "master %s\n", meterBar(m.master.Peak, m.master.RMS, width))
	if m.ctrl != "" {
		fmt.Fprintf(&b, "last control: %s\n", m.ctrl)
	}
	if m.misses > 0 {
		fmt.Fprintf(&b, "DEADLINE MISSES: %d\n", m.misses)
	}
	if h := m.healthLine(); h != "" {
		fmt.Fprintf(&b, "health %s\n", h)
	}
	if g := m.ganttPanel(width); g != "" {
		b.WriteString(g)
	}
	return b.String()
}

// ganttPanel renders the latest sampled schedule realization as a text
// Gantt chart, one track per worker — the live counterpart of the
// paper's Fig. 11. Empty until a trace event arrives.
func (m *Model) ganttPanel(width int) string {
	if !m.hasTrace || m.trace.Workers <= 0 || m.trace.MakespanUS <= 0 {
		return ""
	}
	t := &m.trace
	var b strings.Builder
	fmt.Fprintf(&b, "schedule (cycle %d, %.0f µs makespan)\n", t.Cycle, t.MakespanUS)
	scale := float64(width) / t.MakespanUS
	for w := 0; w < t.Workers; w++ {
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		for _, n := range t.Nodes {
			if n.Worker != w || len(n.Name) == 0 {
				continue
			}
			lo := int(n.StartUS * scale)
			hi := int(n.EndUS * scale)
			if hi >= width {
				hi = width - 1
			}
			for i := lo; i <= hi && i >= 0; i++ {
				row[i] = n.Name[0]
			}
		}
		fmt.Fprintf(&b, "  w%d |%s|\n", w, row)
	}
	return b.String()
}

// healthLine summarizes the health panel: governor level, contained
// faults, quarantined nodes, stalls, SLO budget burn and bus drops.
// Empty when no health
// event has arrived and nothing faulted (quiet engines get no panel).
func (m *Model) healthLine() string {
	if !m.hasHealth && m.faults == 0 {
		return ""
	}
	var parts []string
	if m.hasHealth {
		parts = append(parts, m.health.Level)
		if m.health.LoadFactor != 1.0 && m.health.LoadFactor != 0 {
			parts = append(parts, fmt.Sprintf("load %.2fx", m.health.LoadFactor))
		}
	}
	if m.degrade != "" {
		parts = append(parts, m.degrade)
	}
	if m.hasHealth && m.health.PlanEpoch > 0 {
		parts = append(parts, fmt.Sprintf("epoch %d", m.health.PlanEpoch))
	}
	if m.topology != "" {
		parts = append(parts, m.topology)
	}
	if m.faults > 0 {
		parts = append(parts, fmt.Sprintf("faults %d (last %s)", m.faults, m.lastFault))
	}
	if m.hasHealth {
		if m.health.APCMeanMS > 0 {
			parts = append(parts, fmt.Sprintf("apc %.2fms graph %.2fms", m.health.APCMeanMS, m.health.GraphMeanMS))
		}
		if m.health.MissRate > 0 {
			parts = append(parts, fmt.Sprintf("miss %.2f%%", 100*m.health.MissRate))
		}
		// SLO budget burn: how much of the rolling deadline-miss budget
		// is spent and how fast it is burning.
		if m.health.SLOExhausted {
			parts = append(parts, fmt.Sprintf("SLO EXHAUSTED burn %.1fx", m.health.SLOBurnRate1m))
		} else if m.health.SLOBudgetRemaining > 0 && m.health.SLOBudgetRemaining < 1 {
			parts = append(parts, fmt.Sprintf("budget %.0f%% burn %.1fx",
				100*m.health.SLOBudgetRemaining, m.health.SLOBurnRate1m))
		}
		if m.health.CritPathUS > 0 {
			parts = append(parts, fmt.Sprintf("cp %.0fµs ∥%.2f", m.health.CritPathUS, m.health.Parallelism))
		}
		// Admission gate: the analytical bound vs the envelope, and how
		// much headroom the session has before predicted overload.
		if m.health.AdmissionVerdict != "" {
			if m.health.AdmissionHeadroomUS < 0 {
				parts = append(parts, fmt.Sprintf("ADM OVER bound %.0fµs", m.health.AdmissionBoundUS))
			} else {
				parts = append(parts, fmt.Sprintf("adm %s bound %.0fµs +%.0fµs",
					m.health.AdmissionVerdict, m.health.AdmissionBoundUS, m.health.AdmissionHeadroomUS))
			}
		}
		if m.admission != "" {
			parts = append(parts, "adm: "+m.admission)
		}
		if len(m.health.Quarantined) > 0 {
			parts = append(parts, "quarantined "+strings.Join(m.health.Quarantined, ","))
		}
		if m.health.Stalls > 0 {
			parts = append(parts, fmt.Sprintf("stalls %d", m.health.Stalls))
		}
		if m.health.BusDrops > 0 {
			parts = append(parts, fmt.Sprintf("bus drops %d", m.health.BusDrops))
		}
	}
	return strings.Join(parts, " | ")
}

// meterBar draws a level meter: '=' up to the RMS, '-' up to the peak.
func meterBar(peak, rms float64, width int) string {
	clamp := func(x float64) int {
		n := int(audio.Clamp(x, 0, 1) * float64(width))
		if n > width {
			n = width
		}
		return n
	}
	p, r := clamp(peak), clamp(rms)
	if r > p {
		r = p
	}
	bar := make([]byte, width)
	for i := range bar {
		switch {
		case i < r:
			bar[i] = '='
		case i < p:
			bar[i] = '-'
		default:
			bar[i] = ' '
		}
	}
	return "[" + string(bar) + "]"
}

// WaveformCursor renders a track overview with a playhead marker at the
// given position — the UI's waveform strip.
func WaveformCursor(ov library.Overview, posFrac float64, height int) string {
	base := ov.Render(height)
	lines := strings.Split(strings.TrimRight(base, "\n"), "\n")
	if len(lines) == 0 || len(ov.Peak) == 0 {
		return base
	}
	col := int(audio.Clamp(posFrac, 0, 1) * float64(len(ov.Peak)-1))
	var b strings.Builder
	for _, line := range lines {
		row := []byte(line)
		for len(row) <= col {
			row = append(row, ' ')
		}
		row[col] = '|'
		b.Write(row)
		b.WriteByte('\n')
	}
	return b.String()
}
