package ui

import (
	"strings"
	"testing"

	"djstar/internal/audio"
	"djstar/internal/library"
	"djstar/internal/middleware"
)

func TestModelAppliesEvents(t *testing.T) {
	m := NewModel(2)
	m.Apply(middleware.Event{Payload: middleware.DeckPosition{
		Deck: 0, Seconds: 12.5, Tempo: 1.02, Playing: true,
	}})
	m.Apply(middleware.Event{Payload: middleware.MeterLevels{
		Source: "master", Peak: 0.8, RMS: 0.4,
	}})
	m.Apply(middleware.Event{Payload: middleware.Beat{Deck: 0}})
	m.Apply(middleware.Event{Payload: middleware.DeadlineMiss{DurationMS: 3.5}})
	m.Apply(middleware.Event{Topic: middleware.TopicControl, Payload: "crossfader=0.500"})

	out := m.Render(30)
	for _, want := range []string{"12.5s", "1.02x", "▶", "●", "=", "DEADLINE MISSES: 1", "crossfader"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	if m.Events() != 5 {
		t.Fatalf("Events = %d", m.Events())
	}
}

func TestModelIgnoresOutOfRangeDecks(t *testing.T) {
	m := NewModel(1)
	m.Apply(middleware.Event{Payload: middleware.DeckPosition{Deck: 7}})
	m.Apply(middleware.Event{Payload: middleware.Beat{Deck: -1}})
	// Must not panic; rendering still works.
	if m.Render(20) == "" {
		t.Fatal("empty render")
	}
}

func TestBeatFlashDecays(t *testing.T) {
	m := NewModel(1)
	m.Apply(middleware.Event{Payload: middleware.Beat{Deck: 0}})
	for i := 0; i < 3; i++ {
		if !strings.Contains(m.Render(20), "●") {
			t.Fatalf("lamp off after %d renders", i)
		}
	}
	if strings.Contains(m.Render(20), "●") {
		t.Fatal("lamp stuck on")
	}
}

func TestModelDrain(t *testing.T) {
	bus := middleware.New()
	sub, _ := bus.Subscribe(middleware.TopicDeckPosition, 16)
	m := NewModel(4)
	for i := 0; i < 5; i++ {
		bus.Publish(middleware.TopicDeckPosition, middleware.DeckPosition{Deck: i % 4})
	}
	m.Drain(sub)
	if m.Events() != 5 {
		t.Fatalf("drained %d events", m.Events())
	}
	// Draining an empty queue returns immediately.
	m.Drain(sub)
	sub.Unsubscribe()
	m.Drain(sub) // closed channel is safe
}

func TestMeterBarShape(t *testing.T) {
	bar := meterBar(0.8, 0.4, 10)
	if len(bar) != 12 { // width + brackets
		t.Fatalf("bar length %d", len(bar))
	}
	if !strings.Contains(bar, "=") || !strings.Contains(bar, "-") {
		t.Fatalf("bar = %q", bar)
	}
	// Peak beyond 1 clamps instead of overflowing.
	if over := meterBar(5, 5, 10); len(over) != 12 {
		t.Fatalf("clamped bar = %q", over)
	}
	// RMS above peak is capped at the peak.
	if weird := meterBar(0.2, 0.9, 10); strings.Count(weird, "=") > 2 {
		t.Fatalf("rms exceeded peak: %q", weird)
	}
}

func TestWaveformCursor(t *testing.T) {
	clip := audio.NewStereo(1000)
	for i := range clip.L {
		clip.L[i] = 0.5
		clip.R[i] = 0.5
	}
	ov := library.BuildOverview(clip, 40)
	out := WaveformCursor(ov, 0.5, 2)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("cursor render has %d lines", len(lines))
	}
	wantCol := int(0.5 * float64(len(ov.Peak)-1)) // same mapping as the renderer
	for _, line := range lines {
		if line[wantCol] != '|' {
			t.Fatalf("cursor not at column %d: %q", wantCol, line)
		}
	}
	// Degenerate overview.
	WaveformCursor(library.Overview{}, 0.5, 2)
}

func TestHealthPanel(t *testing.T) {
	m := NewModel(2)
	if strings.Contains(m.Render(24), "health") {
		t.Fatal("quiet model should render no health panel")
	}
	m.Apply(middleware.Event{Topic: middleware.TopicFault, Payload: middleware.FaultEvent{
		Node: "FXA2", Err: "boom", Quarantined: true,
	}})
	m.Apply(middleware.Event{Topic: middleware.TopicDegrade, Payload: middleware.DegradeEvent{
		From: "normal", To: "degraded1",
	}})
	m.Apply(middleware.Event{Topic: middleware.TopicHealth, Payload: middleware.HealthReport{
		Level:       "degraded1",
		LoadFactor:  0.5,
		Quarantined: []string{"FXA2"},
		Stalls:      2,
		BusDrops:    7,
	}})
	out := m.Render(24)
	for _, want := range []string{
		"health", "degraded1", "normal→degraded1", "faults 1 (last FXA2)",
		"quarantined FXA2", "stalls 2", "bus drops 7", "load 0.50x",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestGanttPanel(t *testing.T) {
	m := NewModel(2)
	if strings.Contains(m.Render(40), "schedule") {
		t.Fatal("model without trace should render no gantt panel")
	}
	m.Apply(middleware.Event{Topic: middleware.TopicTrace, Payload: middleware.ScheduleTrace{
		Cycle:      96,
		Workers:    2,
		MakespanUS: 100,
		Nodes: []middleware.TraceNode{
			{Name: "alpha", Worker: 0, StartUS: 0, EndUS: 50},
			{Name: "beta", Worker: 1, StartUS: 10, EndUS: 90},
			{Name: "gamma", Worker: 0, StartUS: 60, EndUS: 100},
		},
	}})
	out := m.Render(40)
	for _, want := range []string{"schedule (cycle 96, 100 µs makespan)", "w0 |", "w1 |"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	// Worker 0's track shows alpha then gamma; worker 1's shows beta.
	lines := strings.Split(out, "\n")
	var w0, w1 string
	for _, l := range lines {
		if strings.Contains(l, "w0 |") {
			w0 = l
		}
		if strings.Contains(l, "w1 |") {
			w1 = l
		}
	}
	if !strings.Contains(w0, "a") || !strings.Contains(w0, "g") {
		t.Fatalf("w0 track missing alpha/gamma bars: %q", w0)
	}
	if !strings.Contains(w1, "b") || strings.Contains(w1, "a") {
		t.Fatalf("w1 track wrong: %q", w1)
	}
	// Health line picks up the snapshot-derived fields.
	m.Apply(middleware.Event{Topic: middleware.TopicHealth, Payload: middleware.HealthReport{
		Level: "normal", APCMeanMS: 1.23, GraphMeanMS: 0.45,
		MissRate: 0.015, CritPathUS: 295, Parallelism: 2.5,
	}})
	out = m.Render(40)
	for _, want := range []string{"apc 1.23ms graph 0.45ms", "miss 1.50%", "cp 295µs ∥2.50"} {
		if !strings.Contains(out, want) {
			t.Fatalf("health line missing %q:\n%s", want, out)
		}
	}
}
