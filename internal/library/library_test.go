package library

import (
	"math"
	"strings"
	"testing"

	"djstar/internal/audio"
	"djstar/internal/synth"
)

func TestAnalyzeBPMOnGroundTruthTracks(t *testing.T) {
	a := NewAnalyzer(audio.SampleRate)
	for _, bpm := range []float64{120, 126, 128} {
		tr := synth.GenerateTrack(synth.TrackSpec{
			Name: "t", BPM: bpm, Bars: 16, Seed: 42, QuietEvery: 0, // all loud
		})
		an, err := a.Analyze(tr.Audio)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(an.BPM-bpm) > 2 {
			t.Errorf("BPM %v detected as %v", bpm, an.BPM)
		}
		if an.BPMConfidence <= 0 {
			t.Errorf("BPM %v confidence %v", bpm, an.BPMConfidence)
		}
	}
}

func TestAnalyzeBPMWithQuietSections(t *testing.T) {
	// The standard tracks alternate loud/quiet bars; tempo must survive.
	a := NewAnalyzer(audio.SampleRate)
	tr := synth.GenerateTrack(synth.TrackSpec{Name: "t", BPM: 126, Bars: 16, Seed: 7})
	an, err := a.Analyze(tr.Audio)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(an.BPM-126) > 3 {
		t.Errorf("BPM = %v, want ~126", an.BPM)
	}
}

func TestAnalyzeKeyTracksRoot(t *testing.T) {
	a := NewAnalyzer(audio.SampleRate)
	// Key 0 tracks are rooted at A (55 Hz); pitch class of A is 9.
	for _, tc := range []struct {
		key  int
		want int
	}{
		{0, 9},  // A
		{5, 2},  // D
		{-4, 5}, // F
	} {
		tr := synth.GenerateTrack(synth.TrackSpec{
			Name: "t", Bars: 8, Seed: 3, Key: tc.key, QuietEvery: 0,
		})
		an, err := a.Analyze(tr.Audio)
		if err != nil {
			t.Fatal(err)
		}
		// Accept the root or its fifth (saw/square harmonics make the
		// fifth the strongest competitor).
		fifth := (tc.want + 7) % 12
		if an.Key != tc.want && an.Key != fifth {
			t.Errorf("key %+d: detected %s (%d), want %s or %s",
				tc.key, an.KeyName, an.Key, KeyName(tc.want), KeyName(fifth))
		}
	}
}

func TestAnalyzeBeatGridSpacing(t *testing.T) {
	a := NewAnalyzer(audio.SampleRate)
	tr := synth.GenerateTrack(synth.TrackSpec{Name: "t", BPM: 120, Bars: 8, Seed: 1, QuietEvery: 0})
	an, err := a.Analyze(tr.Audio)
	if err != nil {
		t.Fatal(err)
	}
	if len(an.BeatGrid) < 16 {
		t.Fatalf("beat grid has %d beats", len(an.BeatGrid))
	}
	wantSpacing := 60.0 / 120 * audio.SampleRate
	// Median spacing within 10 % of the beat period.
	var gaps []float64
	for i := 1; i < len(an.BeatGrid); i++ {
		gaps = append(gaps, float64(an.BeatGrid[i]-an.BeatGrid[i-1]))
	}
	sum := 0.0
	for _, g := range gaps {
		sum += g
	}
	mean := sum / float64(len(gaps))
	if math.Abs(mean-wantSpacing)/wantSpacing > 0.1 {
		t.Fatalf("mean beat spacing %v frames, want ~%v", mean, wantSpacing)
	}
}

func TestAnalyzeRejectsShortClip(t *testing.T) {
	a := NewAnalyzer(audio.SampleRate)
	if _, err := a.Analyze(audio.NewStereo(100)); err == nil {
		t.Fatal("short clip accepted")
	}
}

func TestAnalyzeSilence(t *testing.T) {
	a := NewAnalyzer(audio.SampleRate)
	an, err := a.Analyze(audio.NewStereo(audio.SampleRate * 2))
	if err != nil {
		t.Fatal(err)
	}
	if an.BPM != 0 || an.BPMConfidence != 0 {
		t.Fatalf("silence got BPM %v conf %v", an.BPM, an.BPMConfidence)
	}
	if an.DurationSeconds != 2 {
		t.Fatalf("duration = %v", an.DurationSeconds)
	}
}

func TestKeyNameWraps(t *testing.T) {
	if KeyName(0) != "C" || KeyName(9) != "A" || KeyName(12) != "C" || KeyName(-3) != "A" {
		t.Fatal("KeyName mapping wrong")
	}
}

func TestOverviewShape(t *testing.T) {
	clip := audio.NewStereo(1000)
	for i := 500; i < 1000; i++ { // silent first half, loud second half
		clip.L[i] = 0.8
		clip.R[i] = 0.8
	}
	ov := BuildOverview(clip, 10)
	if len(ov.Peak) != 10 || len(ov.RMS) != 10 {
		t.Fatalf("bucket counts %d/%d", len(ov.Peak), len(ov.RMS))
	}
	if ov.Peak[0] != 0 || ov.RMS[0] != 0 {
		t.Fatalf("silent bucket nonzero: %v %v", ov.Peak[0], ov.RMS[0])
	}
	if math.Abs(ov.Peak[9]-0.8) > 1e-12 || math.Abs(ov.RMS[9]-0.8) > 1e-12 {
		t.Fatalf("loud bucket %v/%v, want 0.8", ov.Peak[9], ov.RMS[9])
	}
	// Degenerate inputs.
	empty := BuildOverview(audio.Stereo{}, 0)
	if len(empty.Peak) != 1 {
		t.Fatal("zero-bucket overview")
	}
}

func TestOverviewRender(t *testing.T) {
	clip := audio.NewStereo(100)
	for i := range clip.L {
		clip.L[i] = 1
		clip.R[i] = 1
	}
	out := BuildOverview(clip, 20).Render(3)
	if !strings.Contains(out, "#") || !strings.Contains(out, "-") {
		t.Fatalf("render missing marks:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 7 {
		t.Fatalf("render has %d lines, want 7", len(lines))
	}
}

func TestLibraryCRUD(t *testing.T) {
	lib := New(audio.SampleRate)
	if _, err := lib.Add(nil); err == nil {
		t.Fatal("nil track accepted")
	}
	tr := synth.GenerateTrack(synth.TrackSpec{Name: "one", BPM: 126, Bars: 4, Seed: 1})
	e, err := lib.Add(tr)
	if err != nil {
		t.Fatal(err)
	}
	if e.Analysis == nil || lib.Len() != 1 {
		t.Fatal("entry incomplete")
	}
	if lib.Get("one") != e {
		t.Fatal("Get mismatch")
	}
	if lib.Get("missing") != nil {
		t.Fatal("phantom entry")
	}
	tr2 := synth.GenerateTrack(synth.TrackSpec{Name: "two", BPM: 140, Bars: 4, Seed: 2})
	if _, err := lib.Add(tr2); err != nil {
		t.Fatal(err)
	}
	names := lib.Names()
	if len(names) != 2 || names[0] != "one" || names[1] != "two" {
		t.Fatalf("Names = %v", names)
	}
	if !lib.Remove("one") || lib.Remove("one") {
		t.Fatal("Remove semantics wrong")
	}
	if lib.Len() != 1 {
		t.Fatal("Len after remove")
	}
}

func TestLibraryCompatibleBPM(t *testing.T) {
	lib := New(audio.SampleRate)
	for _, spec := range []synth.TrackSpec{
		{Name: "a", BPM: 124, Bars: 8, Seed: 1, QuietEvery: 0},
		{Name: "b", BPM: 126, Bars: 8, Seed: 2, QuietEvery: 0},
		{Name: "c", BPM: 150, Bars: 8, Seed: 3, QuietEvery: 0},
	} {
		if _, err := lib.Add(synth.GenerateTrack(spec)); err != nil {
			t.Fatal(err)
		}
	}
	got := lib.CompatibleBPM(126, 4)
	if len(got) != 2 {
		t.Fatalf("matched %d tracks, want 2 (124 & 126)", len(got))
	}
	// Sorted by distance: 126 first.
	if math.Abs(got[0].Analysis.BPM-126) > math.Abs(got[1].Analysis.BPM-126) {
		t.Fatal("results not distance-sorted")
	}
}
