package library

import (
	"testing"
	"testing/quick"

	"djstar/internal/audio"
	"djstar/internal/synth"
)

func TestKeysCompatible(t *testing.T) {
	cases := []struct {
		a, b int
		want bool
	}{
		{9, 9, true},   // same key
		{9, 4, true},   // A -> E (fifth up)
		{9, 2, true},   // A -> D (fifth down)
		{9, 10, false}, // semitone clash
		{0, 6, false},  // tritone
		{-3, 9, true},  // wrapping
	}
	for _, c := range cases {
		if got := KeysCompatible(c.a, c.b); got != c.want {
			t.Fatalf("KeysCompatible(%d,%d) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestKeysCompatibleSymmetricProperty(t *testing.T) {
	f := func(a, b int8) bool {
		return KeysCompatible(int(a), int(b)) == KeysCompatible(int(b), int(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCompatibleTracksFiltersKeyAndBPM(t *testing.T) {
	lib := New(audio.SampleRate)
	add := func(name string, bpm float64, key int) *Entry {
		e, err := lib.Add(synth.GenerateTrack(synth.TrackSpec{
			Name: name, BPM: bpm, Bars: 8, Seed: uint64(len(name)), Key: key, QuietEvery: 0,
		}))
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	ref := add("ref", 126, 0) // root A
	add("fifthup", 126, 7)    // E: compatible
	add("clash", 126, 1)      // A#: harmonic clash
	add("toofast", 150, 0)    // same key, way off tempo
	got := lib.CompatibleTracks(ref, 4)
	// Key detection may land on the root or its fifth, so assert set
	// bounds rather than exact membership: "clash" and "toofast" must be
	// excluded, ref itself must be excluded.
	for _, e := range got {
		if e == ref {
			t.Fatal("reference track returned")
		}
		if e.Track.Name == "toofast" {
			t.Fatal("off-tempo track returned")
		}
	}
	if lib.CompatibleTracks(nil, 4) != nil {
		t.Fatal("nil entry should give nil")
	}
}

func TestDetectSections(t *testing.T) {
	// Overview: quiet, loud, quiet.
	ov := Overview{
		RMS:  []float64{0.05, 0.06, 0.5, 0.55, 0.6, 0.05, 0.04, 0.05},
		Peak: make([]float64, 8),
	}
	sections := DetectSections(ov, 800, 0.5)
	if len(sections) != 3 {
		t.Fatalf("got %d sections: %+v", len(sections), sections)
	}
	if sections[0].Loud || !sections[1].Loud || sections[2].Loud {
		t.Fatalf("loudness pattern wrong: %+v", sections)
	}
	if sections[0].StartFrame != 0 || sections[2].EndFrame != 800 {
		t.Fatalf("bounds wrong: %+v", sections)
	}
	// Contiguity.
	for i := 1; i < len(sections); i++ {
		if sections[i].StartFrame != sections[i-1].EndFrame {
			t.Fatalf("gap between sections %d and %d", i-1, i)
		}
	}
}

func TestDetectSectionsDegenerate(t *testing.T) {
	if DetectSections(Overview{}, 100, 0.5) != nil {
		t.Fatal("empty overview should give nil")
	}
	silent := DetectSections(Overview{RMS: make([]float64, 4), Peak: make([]float64, 4)}, 100, 0.5)
	if len(silent) != 1 || silent[0].Loud {
		t.Fatalf("silent track sections: %+v", silent)
	}
}

func TestMixOutPoint(t *testing.T) {
	// Ends with a quiet outro starting at frame 600.
	sections := []Section{
		{0, 200, false},
		{200, 600, true},
		{600, 800, false},
	}
	if got := MixOutPoint(sections, 800); got != 600 {
		t.Fatalf("MixOutPoint = %d, want 600", got)
	}
	// No outro: 80 % point.
	loud := []Section{{0, 800, true}}
	if got := MixOutPoint(loud, 800); got != 640 {
		t.Fatalf("MixOutPoint = %d, want 640", got)
	}
}

func TestSortByKeyDistance(t *testing.T) {
	mk := func(key int) *Entry {
		return &Entry{Analysis: &Analysis{Key: key}}
	}
	entries := []*Entry{mk(6), mk(7), mk(0), mk(2)}
	SortByKeyDistance(entries, 0)
	wantOrder := []int{0, 7, 2, 6} // same, fifth, whole tone, tritone
	for i, w := range wantOrder {
		if entries[i].Analysis.Key != w {
			t.Fatalf("order = %v, want %v at %d",
				[]int{entries[0].Analysis.Key, entries[1].Analysis.Key,
					entries[2].Analysis.Key, entries[3].Analysis.Key}, w, i)
		}
	}
}

func TestSectionsOnSyntheticTrack(t *testing.T) {
	// The generated tracks alternate loud/quiet two-bar groups; section
	// detection must find multiple alternations.
	tr := synth.GenerateTrack(synth.TrackSpec{Name: "t", Bars: 16, Seed: 2})
	ov := BuildOverview(tr.Audio, 200)
	sections := DetectSections(ov, tr.Len(), 0.4)
	if len(sections) < 4 {
		t.Fatalf("found only %d sections on an alternating track", len(sections))
	}
	var louds, quiets int
	for _, s := range sections {
		if s.Loud {
			louds++
		} else {
			quiets++
		}
	}
	if louds == 0 || quiets == 0 {
		t.Fatalf("sections all one kind: %d loud, %d quiet", louds, quiets)
	}
}
