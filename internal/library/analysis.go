// Package library implements the track-management subsystem of DJ Star's
// Core layer ("Audio Data Collection" and "Track Preprocessing" in the
// paper's Fig. 2 architecture): offline track analysis — tempo (BPM)
// estimation, musical key detection, beat-grid construction and waveform
// overview rendering — plus the library index the UI layer browses.
//
// Analysis is offline work done when a track is loaded into the library,
// not part of the 2.9 ms audio processing cycle; it may allocate freely.
package library

import (
	"fmt"
	"math"

	"djstar/internal/audio"
	"djstar/internal/dsp"
)

// Analysis is the result of analyzing one track.
type Analysis struct {
	// BPM is the estimated tempo in beats per minute.
	BPM float64
	// BPMConfidence is the autocorrelation peak strength in (0, 1];
	// higher is more reliable.
	BPMConfidence float64
	// Key is the estimated musical root as a pitch class 0..11
	// (0 = C, 9 = A).
	Key int
	// KeyName is the conventional name of Key ("A", "C#", ...).
	KeyName string
	// BeatGrid holds the estimated beat positions in frames.
	BeatGrid []int
	// Overview is the waveform display data (see Overview type).
	Overview Overview
	// DurationSeconds is the track length.
	DurationSeconds float64
}

// Analyzer runs track analysis with fixed parameters.
type Analyzer struct {
	rate      int
	hop       int
	keyFFT    *dsp.FFT
	keyWindow []float64
}

// onset-envelope parameters: 512-sample hops give ~86 envelope samples
// per second at 44.1 kHz, plenty for tempo in the DJ range. Key detection
// uses a long frame so bass fundamentals resolve to the right pitch class
// (an 8192-point frame at 44.1 kHz gives ~5.4 Hz bins; a semitone at
// 55 Hz is ~3.3 Hz, so we start the chroma band an octave up at 100 Hz
// where bins separate adjacent classes cleanly).
const (
	analysisHop   = 512
	analysisFrame = 2048
	keyFrame      = 8192

	// MinBPM and MaxBPM bound the tempo search (the usual DJ range).
	MinBPM = 70.0
	MaxBPM = 180.0
)

// NewAnalyzer returns an analyzer for the given sampling rate.
func NewAnalyzer(rate int) *Analyzer {
	a := &Analyzer{
		rate:      rate,
		hop:       analysisHop,
		keyFFT:    dsp.MustFFT(keyFrame),
		keyWindow: make([]float64, keyFrame),
	}
	dsp.MakeWindow(dsp.Hann, a.keyWindow)
	return a
}

// Analyze runs the full analysis over a stereo clip.
func (a *Analyzer) Analyze(clip audio.Stereo) (*Analysis, error) {
	n := clip.Len()
	if n < analysisFrame {
		return nil, fmt.Errorf("library: clip too short to analyze (%d frames)", n)
	}
	mono := make([]float64, n)
	for i := 0; i < n; i++ {
		mono[i] = 0.5 * (clip.L[i] + clip.R[i])
	}

	envelope := a.onsetEnvelope(mono)
	bpm, conf := a.estimateBPM(envelope)
	grid := a.beatGrid(envelope, bpm)
	key := a.estimateKey(mono)

	return &Analysis{
		BPM:             bpm,
		BPMConfidence:   conf,
		Key:             key,
		KeyName:         KeyName(key),
		BeatGrid:        grid,
		Overview:        BuildOverview(clip, 400),
		DurationSeconds: float64(n) / float64(a.rate),
	}, nil
}

// onsetEnvelope computes a half-wave-rectified energy-difference envelope
// at hop resolution: large values mark percussive onsets (the kick drum,
// for our synthetic tracks).
func (a *Analyzer) onsetEnvelope(mono []float64) []float64 {
	hops := (len(mono) - a.hop) / a.hop
	if hops < 2 {
		return nil
	}
	energy := make([]float64, hops)
	for h := 0; h < hops; h++ {
		sum := 0.0
		seg := mono[h*a.hop : h*a.hop+a.hop]
		for _, s := range seg {
			sum += s * s
		}
		energy[h] = math.Sqrt(sum / float64(a.hop))
	}
	env := make([]float64, hops)
	for h := 1; h < hops; h++ {
		if d := energy[h] - energy[h-1]; d > 0 {
			env[h] = d
		}
	}
	return env
}

// estimateBPM autocorrelates the onset envelope over the lag range
// corresponding to [MinBPM, MaxBPM] and picks the strongest peak,
// preferring the base tempo over its half/double ambiguities.
func (a *Analyzer) estimateBPM(env []float64) (bpm, confidence float64) {
	if len(env) < 8 {
		return 0, 0
	}
	mean := 0.0
	for _, v := range env {
		mean += v
	}
	mean /= float64(len(env))
	centered := make([]float64, len(env))
	var norm float64
	for i, v := range env {
		centered[i] = v - mean
		norm += centered[i] * centered[i]
	}
	if norm == 0 {
		return 0, 0
	}

	hopSec := float64(a.hop) / float64(a.rate)
	minLag := int(60 / MaxBPM / hopSec)
	maxLag := int(60 / MinBPM / hopSec)
	if maxLag >= len(env) {
		maxLag = len(env) - 1
	}
	if minLag < 1 {
		minLag = 1
	}

	bestLag, bestScore := 0, 0.0
	for lag := minLag; lag <= maxLag; lag++ {
		if score := rawAutocorr(centered, lag) / norm; score > bestScore {
			bestScore = score
			bestLag = lag
		}
	}
	if bestLag == 0 {
		return 0, 0
	}
	// Octave disambiguation: autocorrelation often peaks at the 2-beat
	// period; prefer the base tempo when its peak is nearly as strong.
	if half := bestLag / 2; half >= minLag {
		if s := rawAutocorr(centered, half) / norm; s > 0.75*bestScore {
			bestLag = half
			bestScore = s
		}
	}

	// Parabolic refinement around the integer-lag peak: vertex offset
	// δ = (y0 - y2) / (2 (y0 - 2 y1 + y2)) for samples at lag-1, lag,
	// lag+1.
	refined := float64(bestLag)
	if bestLag > minLag && bestLag < maxLag {
		y0 := rawAutocorr(centered, bestLag-1)
		y1 := rawAutocorr(centered, bestLag)
		y2 := rawAutocorr(centered, bestLag+1)
		if den := y0 - 2*y1 + y2; den != 0 {
			delta := 0.5 * (y0 - y2) / den
			if delta > -1 && delta < 1 {
				refined += delta
			}
		}
	}
	bpm = 60 / (refined * hopSec)
	if bestScore > 1 {
		bestScore = 1
	}
	return bpm, bestScore
}

func rawAutocorr(x []float64, lag int) float64 {
	sum := 0.0
	for i := lag; i < len(x); i++ {
		sum += x[i] * x[i-lag]
	}
	return sum
}

// beatGrid places beats at onset-envelope peaks near the BPM period,
// anchored at the strongest onset.
func (a *Analyzer) beatGrid(env []float64, bpm float64) []int {
	if bpm <= 0 || len(env) == 0 {
		return nil
	}
	hopSec := float64(a.hop) / float64(a.rate)
	period := 60 / bpm / hopSec // beat period in hops

	// Anchor: strongest onset in the first two beats.
	anchor := 0
	limit := min(int(period*2)+1, len(env))
	for i := 1; i < limit; i++ {
		if env[i] > env[anchor] {
			anchor = i
		}
	}
	var grid []int
	for pos := float64(anchor); pos < float64(len(env)); pos += period {
		// Snap to the local envelope maximum within ±10 % of a period.
		c := int(pos)
		lo := max(c-int(period/10), 0)
		hi := min(c+int(period/10)+1, len(env))
		best := c
		for i := lo; i < hi; i++ {
			if env[i] > env[best] {
				best = i
			}
		}
		grid = append(grid, best*a.hop)
	}
	return grid
}

// estimateKey accumulates a chroma vector (energy per pitch class) from
// FFT frames and returns the dominant pitch class — a deliberately simple
// root detector suited to the bass-forward program material of a DJ
// library.
func (a *Analyzer) estimateKey(mono []float64) int {
	var chroma [12]float64
	re := make([]float64, keyFrame)
	im := make([]float64, keyFrame)
	mags := make([]float64, keyFrame/2)

	step := keyFrame // non-overlapping frames are plenty here
	for start := 0; start+keyFrame <= len(mono); start += step {
		for i := 0; i < keyFrame; i++ {
			re[i] = mono[start+i] * a.keyWindow[i]
			im[i] = 0
		}
		a.keyFFT.Transform(re, im)
		dsp.Magnitudes(re, im, mags)
		binHz := float64(a.rate) / keyFrame
		for b := 1; b < len(mags); b++ {
			freq := float64(b) * binHz
			if freq < 100 || freq > 2000 {
				continue
			}
			// MIDI note number -> pitch class.
			note := 69 + 12*math.Log2(freq/440)
			pc := ((int(math.Round(note)) % 12) + 12) % 12
			chroma[pc] += mags[b] * mags[b]
		}
	}
	best := 0
	for pc := 1; pc < 12; pc++ {
		if chroma[pc] > chroma[best] {
			best = pc
		}
	}
	return best
}

// keyNames indexes pitch classes: 0 = C.
var keyNames = [12]string{"C", "C#", "D", "D#", "E", "F", "F#", "G", "G#", "A", "A#", "B"}

// KeyName returns the conventional name of pitch class pc (0 = C).
func KeyName(pc int) string {
	return keyNames[((pc%12)+12)%12]
}

// Overview is decimated waveform data for display: per display bucket,
// the peak and RMS of the underlying samples.
type Overview struct {
	Peak []float64
	RMS  []float64
}

// BuildOverview decimates a clip into the given number of display
// buckets.
func BuildOverview(clip audio.Stereo, buckets int) Overview {
	if buckets < 1 {
		buckets = 1
	}
	n := clip.Len()
	ov := Overview{
		Peak: make([]float64, buckets),
		RMS:  make([]float64, buckets),
	}
	if n == 0 {
		return ov
	}
	for b := 0; b < buckets; b++ {
		lo := b * n / buckets
		hi := (b + 1) * n / buckets
		if hi <= lo {
			hi = lo + 1
		}
		if hi > n {
			hi = n
		}
		peak, sum := 0.0, 0.0
		for i := lo; i < hi; i++ {
			v := math.Max(math.Abs(clip.L[i]), math.Abs(clip.R[i]))
			if v > peak {
				peak = v
			}
			m := 0.5 * (clip.L[i] + clip.R[i])
			sum += m * m
		}
		ov.Peak[b] = peak
		ov.RMS[b] = math.Sqrt(sum / float64(hi-lo))
	}
	return ov
}

// Render draws the overview as an ASCII waveform of the given height
// (rows above and below a center line).
func (ov Overview) Render(height int) string {
	if height < 1 {
		height = 1
	}
	w := len(ov.Peak)
	rows := make([][]byte, 2*height+1)
	for r := range rows {
		rows[r] = make([]byte, w)
		for c := range rows[r] {
			rows[r][c] = ' '
		}
	}
	for c := 0; c < w; c++ {
		p := int(math.Round(ov.Peak[c] * float64(height)))
		r := int(math.Round(ov.RMS[c] * float64(height)))
		for y := 1; y <= p && y <= height; y++ {
			ch := byte('|')
			if y <= r {
				ch = '#'
			}
			rows[height-y][c] = ch
			rows[height+y][c] = ch
		}
		rows[height][c] = '-'
	}
	out := make([]byte, 0, (w+1)*(2*height+1))
	for _, r := range rows {
		out = append(out, r...)
		out = append(out, '\n')
	}
	return string(out)
}
