package library

import (
	"bytes"
	"io"
	"math"
	"strings"
	"testing"

	"djstar/internal/audio"
	"djstar/internal/synth"
)

// memWriter is a minimal io.WriteSeeker for building WAVs in memory.
type memWriter struct {
	data []byte
	pos  int
}

func (m *memWriter) Write(p []byte) (int, error) {
	if need := m.pos + len(p); need > len(m.data) {
		m.data = append(m.data, make([]byte, need-len(m.data))...)
	}
	copy(m.data[m.pos:], p)
	m.pos += len(p)
	return len(p), nil
}

func (m *memWriter) Seek(off int64, whence int) (int64, error) {
	switch whence {
	case io.SeekStart:
		m.pos = int(off)
	case io.SeekCurrent:
		m.pos += int(off)
	case io.SeekEnd:
		m.pos = len(m.data) + int(off)
	}
	return int64(m.pos), nil
}

// wavBytes renders a track to an in-memory WAV file.
func wavBytes(t *testing.T, clip audio.Stereo, rate int) []byte {
	t.Helper()
	var mw memWriter
	w, err := audio.NewWAVWriter(&mw, rate)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WritePacket(clip); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return mw.data
}

func TestImportWAVRoundTrip(t *testing.T) {
	src := synth.GenerateTrack(synth.TrackSpec{Name: "export", BPM: 126, Bars: 8, Seed: 5, QuietEvery: 0})
	data := wavBytes(t, src.Audio, audio.SampleRate)

	lib := New(audio.SampleRate)
	e, err := lib.ImportWAV(bytes.NewReader(data), "imported")
	if err != nil {
		t.Fatal(err)
	}
	if lib.Get("imported") != e {
		t.Fatal("entry not indexed")
	}
	// Analysis of the round-tripped audio recovers the tempo.
	if math.Abs(e.Analysis.BPM-126) > 3 {
		t.Fatalf("imported BPM = %v, want ~126", e.Analysis.BPM)
	}
	// The synthesized bar grid follows the detected BPM.
	wantBar := int(4 * 60 / e.Analysis.BPM * audio.SampleRate)
	if e.Track.FramesPerBar != wantBar {
		t.Fatalf("FramesPerBar = %d, want %d", e.Track.FramesPerBar, wantBar)
	}
	// 16-bit quantization: audio close to the original.
	for i := 0; i < 1000; i++ {
		if math.Abs(e.Track.Audio.L[i]-src.Audio.L[i]) > 1.0/32000 {
			t.Fatalf("sample %d differs beyond quantization", i)
		}
	}
}

func TestImportWAVValidation(t *testing.T) {
	lib := New(audio.SampleRate)
	if _, err := lib.ImportWAV(strings.NewReader("junk"), "x"); err == nil {
		t.Fatal("junk accepted")
	}
	if _, err := lib.ImportWAV(strings.NewReader(""), ""); err == nil {
		t.Fatal("empty name accepted")
	}
	// Wrong sampling rate is rejected (no import resampler).
	clip := audio.NewStereo(48000)
	data := wavBytes(t, clip, 48000)
	if _, err := lib.ImportWAV(bytes.NewReader(data), "wrongrate"); err == nil {
		t.Fatal("48 kHz file accepted into a 44.1 kHz library")
	}
}
