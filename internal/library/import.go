package library

import (
	"fmt"
	"io"

	"djstar/internal/audio"
	"djstar/internal/synth"
)

// ImportWAV decodes a 16-bit stereo PCM WAV stream (the Hardware Access
// layer "connects directly to the hard disk for efficiently loading music
// files", Fig. 2), wraps it as a playable track, analyzes it and adds it
// to the library. The analyzed BPM drives the track's bar grid so loops
// and beat-jumps work on imported material too.
func (l *Library) ImportWAV(r io.Reader, name string) (*Entry, error) {
	if name == "" {
		return nil, fmt.Errorf("library: import needs a track name")
	}
	clip, rate, err := audio.DecodeWAV(r)
	if err != nil {
		return nil, fmt.Errorf("library: importing %q: %w", name, err)
	}
	if rate != l.analyzer.rate {
		return nil, fmt.Errorf("library: %q is %d Hz, library runs at %d Hz (no resampling on import)",
			name, rate, l.analyzer.rate)
	}
	an, err := l.analyzer.Analyze(clip)
	if err != nil {
		return nil, fmt.Errorf("library: analyzing %q: %w", name, err)
	}

	framesPerBar := clip.Len()
	if an.BPM > 0 {
		framesPerBar = int(4 * 60 / an.BPM * float64(rate))
	}
	tr := &synth.Track{
		Name:         name,
		BPM:          an.BPM,
		Audio:        clip,
		FramesPerBar: framesPerBar,
		LoudBars:     nil, // unknown for imported audio
	}
	e := &Entry{Track: tr, Analysis: an}
	l.mu.Lock()
	l.entries[name] = e
	l.mu.Unlock()
	return e, nil
}
