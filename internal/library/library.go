package library

import (
	"fmt"
	"sort"
	"sync"

	"djstar/internal/synth"
)

// Entry is one track in the library together with its analysis.
type Entry struct {
	// Track is the audio (synthetic in this reproduction; a real build
	// would decode files through the Hardware Access layer).
	Track *synth.Track
	// Analysis holds the offline analysis results.
	Analysis *Analysis
}

// Library indexes analyzed tracks by name. It is safe for concurrent use:
// the UI layer browses while the analysis worker adds entries.
type Library struct {
	mu       sync.RWMutex
	analyzer *Analyzer
	entries  map[string]*Entry
}

// New returns an empty library analyzing at the given sampling rate.
func New(rate int) *Library {
	return &Library{
		analyzer: NewAnalyzer(rate),
		entries:  make(map[string]*Entry),
	}
}

// Add analyzes a track and stores it. Adding a track whose name already
// exists replaces the previous entry.
func (l *Library) Add(t *synth.Track) (*Entry, error) {
	if t == nil || t.Name == "" {
		return nil, fmt.Errorf("library: track must be non-nil and named")
	}
	an, err := l.analyzer.Analyze(t.Audio)
	if err != nil {
		return nil, fmt.Errorf("library: analyzing %q: %w", t.Name, err)
	}
	e := &Entry{Track: t, Analysis: an}
	l.mu.Lock()
	l.entries[t.Name] = e
	l.mu.Unlock()
	return e, nil
}

// Get returns the entry for name, or nil.
func (l *Library) Get(name string) *Entry {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.entries[name]
}

// Len returns the number of tracks.
func (l *Library) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.entries)
}

// Names returns all track names, sorted.
func (l *Library) Names() []string {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make([]string, 0, len(l.entries))
	for n := range l.entries {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Remove deletes a track by name; it reports whether it existed.
func (l *Library) Remove(name string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.entries[name]; !ok {
		return false
	}
	delete(l.entries, name)
	return true
}

// CompatibleBPM lists tracks whose analyzed tempo is within pct percent
// of the given BPM (a DJ's "what can I mix into this" query), sorted by
// tempo distance.
func (l *Library) CompatibleBPM(bpm, pct float64) []*Entry {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var out []*Entry
	for _, e := range l.entries {
		if e.Analysis.BPM <= 0 {
			continue
		}
		diff := (e.Analysis.BPM - bpm) / bpm * 100
		if diff < 0 {
			diff = -diff
		}
		if diff <= pct {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(a, b int) bool {
		da := out[a].Analysis.BPM - bpm
		db := out[b].Analysis.BPM - bpm
		if da < 0 {
			da = -da
		}
		if db < 0 {
			db = -db
		}
		return da < db
	})
	return out
}
