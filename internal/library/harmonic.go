package library

import "sort"

// Harmonic mixing support: DJs pick the next track not just by tempo but
// by key compatibility (the "Camelot wheel"). Two keys blend well when
// they are identical, a perfect fifth/fourth apart, or relative
// major/minor. Our analyzer reports a root pitch class without mode, so
// compatibility here is: same class, +7 (fifth up) or +5 (fifth down).

// KeysCompatible reports whether two pitch classes mix harmonically.
func KeysCompatible(a, b int) bool {
	a = ((a % 12) + 12) % 12
	b = ((b % 12) + 12) % 12
	d := (b - a + 12) % 12
	return d == 0 || d == 5 || d == 7
}

// CompatibleTracks lists tracks that mix with the given entry: tempo
// within pct percent AND harmonically compatible key, sorted by tempo
// distance. The entry itself is excluded.
func (l *Library) CompatibleTracks(with *Entry, pct float64) []*Entry {
	if with == nil || with.Analysis == nil {
		return nil
	}
	out := l.CompatibleBPM(with.Analysis.BPM, pct)
	filtered := out[:0]
	for _, e := range out {
		if e == with {
			continue
		}
		if KeysCompatible(with.Analysis.Key, e.Analysis.Key) {
			filtered = append(filtered, e)
		}
	}
	return filtered
}

// Section is a structural region of a track (intro/outro detection).
type Section struct {
	// StartFrame and EndFrame bound the section.
	StartFrame, EndFrame int
	// Loud reports whether the section is a full-energy region.
	Loud bool
}

// DetectSections segments a clip into loud and quiet regions using the
// overview RMS — the basis for "mix in at the outro, out after the
// intro" autopilot decisions. minFrac is the relative RMS threshold
// (e.g. 0.5: a bucket is loud when above half the track's peak RMS).
func DetectSections(ov Overview, totalFrames int, minFrac float64) []Section {
	n := len(ov.RMS)
	if n == 0 || totalFrames <= 0 {
		return nil
	}
	peak := 0.0
	for _, r := range ov.RMS {
		if r > peak {
			peak = r
		}
	}
	if peak == 0 {
		return []Section{{StartFrame: 0, EndFrame: totalFrames, Loud: false}}
	}
	threshold := peak * minFrac

	var out []Section
	cur := Section{StartFrame: 0, Loud: ov.RMS[0] >= threshold}
	for b := 1; b < n; b++ {
		loud := ov.RMS[b] >= threshold
		if loud != cur.Loud {
			cur.EndFrame = b * totalFrames / n
			out = append(out, cur)
			cur = Section{StartFrame: cur.EndFrame, Loud: loud}
		}
	}
	cur.EndFrame = totalFrames
	out = append(out, cur)
	return out
}

// MixOutPoint suggests where to start mixing out of a track: the
// beginning of its final quiet section (the outro), or 80 % through when
// the track never goes quiet.
func MixOutPoint(sections []Section, totalFrames int) int {
	for i := len(sections) - 1; i >= 0; i-- {
		s := sections[i]
		if !s.Loud && s.EndFrame == totalFrames && s.StartFrame > 0 {
			return s.StartFrame
		}
	}
	return totalFrames * 4 / 5
}

// SortByKeyDistance orders entries by circle-of-fifths distance from the
// reference key (stable within equal distance).
func SortByKeyDistance(entries []*Entry, key int) {
	dist := func(e *Entry) int {
		d := ((e.Analysis.Key-key)%12 + 12) % 12
		// Distance on the circle of fifths: 0 is best, 7/5 next, etc.
		switch d {
		case 0:
			return 0
		case 5, 7:
			return 1
		case 2, 10:
			return 2
		default:
			return 3
		}
	}
	sort.SliceStable(entries, func(a, b int) bool {
		return dist(entries[a]) < dist(entries[b])
	})
}
