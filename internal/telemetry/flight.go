package telemetry

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"djstar/internal/graph"
	"djstar/internal/obs"
)

// Flight recorder: a black box that continuously retains the recent past
// — sampled schedule realizations, fault/governor/stall/miss events and
// the rolling time series — and, when something goes wrong, dumps it all
// as one self-contained JSON incident bundle for offline replay
// (djanalyze -incident). The retention path is preallocated and cheap;
// the dump runs on its own goroutine, never on the audio path.

// Trigger reasons.
const (
	TriggerBudget     = "deadline-budget" // rolling miss window blew its budget
	TriggerQuarantine = "quarantine"      // a node was quarantined
	TriggerStall      = "stall"           // the watchdog named a wedged node
)

// Event is one retained occurrence in the recorder's event ring.
type Event struct {
	// Cycle is the engine cycle the event belongs to.
	Cycle uint64 `json:"cycle"`
	// Kind is "fault", "quarantine", "stall", "governor" or a trigger
	// reason.
	Kind string `json:"kind"`
	// Detail names the node / transition involved.
	Detail string `json:"detail"`
}

// GraphInfo is the task graph's structure, embedded in the bundle so the
// offline analyzer can rebuild the dependency DAG without the process
// that produced it.
type GraphInfo struct {
	Names []string  `json:"names"`
	Order []int32   `json:"order"`
	Preds [][]int32 `json:"preds"`
}

// Plan reconstructs a minimal executable-shaped plan (Run stubs only)
// sufficient for obs.CriticalPath.
func (g GraphInfo) Plan() *graph.Plan {
	return graph.PlanFromLists(g.Names, g.Order, g.Preds)
}

// IncidentSchemaVersion identifies the bundle wire shape.
const IncidentSchemaVersion = 1

// Incident is one self-contained bundle: what happened, the engine's
// identity and live measurements at dump time, the recent past, and the
// graph structure + node means needed to replay the analysis offline.
type Incident struct {
	SchemaVersion int    `json:"schema_version"`
	Reason        string `json:"reason"`
	UnixNanos     int64  `json:"unix_nanos"`
	Cycle         uint64 `json:"cycle"`

	Strategy string `json:"strategy"`
	Threads  int    `json:"threads"`
	Session  string `json:"session"`

	SLO    SLOStatus `json:"slo"`
	Totals Totals    `json:"totals"`

	// Events is the recorder's event ring, oldest first.
	Events []Event `json:"events"`
	// Traces are the retained sampled schedule realizations, oldest
	// first.
	Traces []obs.CycleTrace `json:"traces"`
	// Series is the recent per-second time series, oldest first.
	Series []RingSlot `json:"series"`

	// Graph, NodeMeansUS and CritPath make the bundle replayable: the
	// critical path recomputed offline from Graph + NodeMeansUS must
	// reproduce CritPath exactly.
	Graph       GraphInfo     `json:"graph"`
	NodeMeansUS []float64     `json:"node_means_us"`
	CritPath    *obs.PathStat `json:"crit_path,omitempty"`
}

// RecorderConfig tunes a flight recorder.
type RecorderConfig struct {
	// Nodes is the plan's node count (sizes the preallocated trace
	// ring). Required when traces are fed.
	Nodes int
	// Dir receives incident bundles; empty disables dumping (triggers
	// are still counted and retained as events).
	Dir string
	// Traces is the sampled-realization retention depth (default 16).
	Traces int
	// Events is the event ring depth (default 64).
	Events int
	// CooldownSeconds is the minimum spacing between dumps (default 10)
	// so an incident storm produces one bundle, not thousands.
	CooldownSeconds int
	// SeriesSeconds bounds the bundled time series (default 120).
	SeriesSeconds int
	// OnDump, when set, is notified after a bundle is written (called on
	// the dump goroutine).
	OnDump func(path string, inc *Incident)
}

func (c RecorderConfig) withDefaults() RecorderConfig {
	if c.Traces <= 0 {
		c.Traces = 16
	}
	if c.Events <= 0 {
		c.Events = 64
	}
	if c.CooldownSeconds <= 0 {
		c.CooldownSeconds = 10
	}
	if c.SeriesSeconds <= 0 {
		c.SeriesSeconds = 120
	}
	return c
}

// Recorder retains the recent past and dumps incident bundles. AddTrace
// runs on the cycle thread and is allocation-free once the preallocated
// rings are warm; AddEvent may run on worker or watchdog threads.
type Recorder struct {
	cfg Config // collector labels, copied for the bundle
	rc  RecorderConfig
	col *Collector

	mu      sync.Mutex
	events  []Event
	evPos   int
	evLen   int
	traces  []obs.CycleTrace
	trPos   int
	trLen   int
	lastDmp atomic.Int64 // unix seconds of the last dump
	dumpSeq atomic.Uint64
	pending sync.WaitGroup

	// fill lets the engine stamp its side of the bundle (graph
	// structure, node means, critical path, strategy identity) at dump
	// time; set once at construction wiring.
	fill func(*Incident)
}

// NewRecorder builds a flight recorder bound to a collector.
func NewRecorder(col *Collector, rc RecorderConfig) *Recorder {
	rc = rc.withDefaults()
	r := &Recorder{
		cfg:    col.cfg,
		rc:     rc,
		col:    col,
		events: make([]Event, rc.Events),
		traces: make([]obs.CycleTrace, rc.Traces),
	}
	for i := range r.traces {
		r.traces[i] = obs.CycleTrace{
			Worker:  make([]int32, rc.Nodes),
			StartNS: make([]int64, rc.Nodes),
			EndNS:   make([]int64, rc.Nodes),
		}
	}
	return r
}

// SetBundleFiller installs the engine-side bundle stamp. Call before the
// first cycle.
func (r *Recorder) SetBundleFiller(fill func(*Incident)) { r.fill = fill }

// AddEvent retains one occurrence (any thread; allocation-free).
func (r *Recorder) AddEvent(cycle uint64, kind, detail string) {
	r.mu.Lock()
	r.events[r.evPos] = Event{Cycle: cycle, Kind: kind, Detail: detail}
	r.evPos = (r.evPos + 1) % len(r.events)
	if r.evLen < len(r.events) {
		r.evLen++
	}
	r.mu.Unlock()
}

// AddTrace retains a copy of one sampled schedule realization (cycle
// thread; allocation-free once warm — the ring slices are preallocated
// for the plan size).
func (r *Recorder) AddTrace(t *obs.CycleTrace) {
	r.mu.Lock()
	dst := &r.traces[r.trPos]
	dst.Cycle = t.Cycle
	dst.BaseNS = t.BaseNS
	dst.Workers = t.Workers
	dst.Worker = append(dst.Worker[:0], t.Worker...)
	dst.StartNS = append(dst.StartNS[:0], t.StartNS...)
	dst.EndNS = append(dst.EndNS[:0], t.EndNS...)
	r.trPos = (r.trPos + 1) % len(r.traces)
	if r.trLen < len(r.traces) {
		r.trLen++
	}
	r.mu.Unlock()
}

// Trigger fires the recorder: the trigger is retained as an event and
// counted, and — when a dump directory is configured and the cooldown
// has passed — a bundle is assembled and written on a fresh goroutine,
// off the audio path.
func (r *Recorder) Trigger(cycle uint64, reason string) {
	r.AddEvent(cycle, reason, "")
	r.col.RecordIncident()
	if r.rc.Dir == "" {
		return
	}
	now := time.Now().Unix()
	last := r.lastDmp.Load()
	if now-last < int64(r.rc.CooldownSeconds) || !r.lastDmp.CompareAndSwap(last, now) {
		return
	}
	seq := r.dumpSeq.Add(1)
	r.pending.Add(1)
	go func() {
		defer r.pending.Done()
		r.dump(cycle, reason, seq)
	}()
}

// Flush waits for in-flight dumps to finish (shutdown and tests).
func (r *Recorder) Flush() { r.pending.Wait() }

// snapshot copies the retained rings, oldest first.
func (r *Recorder) snapshot() (events []Event, traces []obs.CycleTrace) {
	r.mu.Lock()
	defer r.mu.Unlock()
	events = make([]Event, 0, r.evLen)
	for i := 0; i < r.evLen; i++ {
		events = append(events, r.events[(r.evPos-r.evLen+i+len(r.events))%len(r.events)])
	}
	traces = make([]obs.CycleTrace, 0, r.trLen)
	for i := 0; i < r.trLen; i++ {
		src := &r.traces[(r.trPos-r.trLen+i+len(r.traces))%len(r.traces)]
		traces = append(traces, src.Clone())
	}
	return events, traces
}

// dump assembles and writes one bundle.
func (r *Recorder) dump(cycle uint64, reason string, seq uint64) {
	inc := &Incident{
		SchemaVersion: IncidentSchemaVersion,
		Reason:        reason,
		UnixNanos:     time.Now().UnixNano(),
		Cycle:         cycle,
		Strategy:      r.cfg.Strategy,
		Session:       r.cfg.Session,
		SLO:           r.col.SLO(),
		Totals:        r.col.Totals(),
		Series:        r.col.Series(r.rc.SeriesSeconds),
	}
	inc.Events, inc.Traces = r.snapshot()
	if r.fill != nil {
		r.fill(inc)
	}
	path := filepath.Join(r.rc.Dir, fmt.Sprintf("incident-%s-%d.json", reason, seq))
	if err := writeIncident(path, inc); err != nil {
		return
	}
	if r.rc.OnDump != nil {
		r.rc.OnDump(path, inc)
	}
}

func writeIncident(path string, inc *Incident) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(inc); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadIncident reads a bundle from disk.
func LoadIncident(path string) (*Incident, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var inc Incident
	if err := json.Unmarshal(data, &inc); err != nil {
		return nil, fmt.Errorf("telemetry: %s: %w", path, err)
	}
	if inc.SchemaVersion != IncidentSchemaVersion {
		return nil, fmt.Errorf("telemetry: %s: schema version %d, want %d",
			path, inc.SchemaVersion, IncidentSchemaVersion)
	}
	return &inc, nil
}

// Replay recomputes the critical path offline from the bundle's graph
// structure and node means — the same computation the live engine
// reported into CritPath. A mismatch means the bundle is internally
// inconsistent.
func (inc *Incident) Replay() (obs.PathStat, error) {
	if len(inc.Graph.Names) == 0 || len(inc.NodeMeansUS) != len(inc.Graph.Names) {
		return obs.PathStat{}, fmt.Errorf("telemetry: bundle has no replayable graph (%d names, %d means)",
			len(inc.Graph.Names), len(inc.NodeMeansUS))
	}
	return obs.CriticalPath(inc.Graph.Plan(), inc.NodeMeansUS), nil
}
