package telemetry

// RingSeconds is the rolling time-series retention: one slot per second,
// 15 minutes deep — enough for the three standard SLO burn windows
// (1 m / 5 m / 15 m) and a post-mortem's lead-up view.
const RingSeconds = 900

// RingSlot is one second of aggregated engine activity.
type RingSlot struct {
	// UnixSec identifies the second (0 = slot never written).
	UnixSec int64 `json:"unix_sec"`
	// Cycles and Misses count APCs and deadline misses in the second.
	Cycles uint64 `json:"cycles"`
	Misses uint64 `json:"misses"`
	// APCSumNS accumulates APC time for the second's mean.
	APCSumNS int64 `json:"apc_sum_ns"`
	// Faults, Quarantines and Stalls count fault-tolerance events.
	Faults      uint64 `json:"faults"`
	Quarantines uint64 `json:"quarantines"`
	Stalls      uint64 `json:"stalls"`
	// GovLevel is the highest governor level seen in the second.
	GovLevel int32 `json:"gov_level"`
	// BusDrops is the cumulative bus drop count at the slot's last write
	// (a level, not a delta; the bus counts are already cumulative).
	BusDrops int64 `json:"bus_drops"`
}

// ring is the fixed-size per-second series. All methods are called with
// the collector mutex held; the write path performs no allocation.
type ring struct {
	slots [RingSeconds]RingSlot
	// head indexes the slot for curSec; valid counts written slots.
	head   int
	curSec int64
	valid  int
}

// slotFor advances the ring to sec and returns its slot. Skipped seconds
// (idle engine) leave zero slots behind so rates stay honest.
func (r *ring) slotFor(sec int64) *RingSlot {
	if r.valid == 0 {
		r.curSec = sec
		r.valid = 1
		s := &r.slots[r.head]
		*s = RingSlot{UnixSec: sec}
		return s
	}
	if sec < r.curSec {
		// Clock went backwards (or an old timestamp): fold into the
		// current slot rather than corrupting the series.
		sec = r.curSec
	}
	for r.curSec < sec {
		r.curSec++
		r.head = (r.head + 1) % RingSeconds
		r.slots[r.head] = RingSlot{UnixSec: r.curSec}
		if r.valid < RingSeconds {
			r.valid++
		}
	}
	return &r.slots[r.head]
}

// current returns the slot being written, or nil before the first write.
func (r *ring) current() *RingSlot {
	if r.valid == 0 {
		return nil
	}
	return &r.slots[r.head]
}

// lastN copies the most recent n slots, oldest first (snapshot path;
// allocates).
func (r *ring) lastN(n int) []RingSlot {
	if n > r.valid {
		n = r.valid
	}
	if n <= 0 {
		return nil
	}
	out := make([]RingSlot, n)
	for i := 0; i < n; i++ {
		out[i] = r.slots[(r.head-n+1+i+RingSeconds)%RingSeconds]
	}
	return out
}

// windowSums aggregates cycles and misses over the most recent n slots
// (including the in-progress one).
func (r *ring) windowSums(n int) (cycles, misses uint64) {
	if n > r.valid {
		n = r.valid
	}
	for i := 0; i < n; i++ {
		s := &r.slots[(r.head-i+RingSeconds)%RingSeconds]
		cycles += s.Cycles
		misses += s.Misses
	}
	return cycles, misses
}
