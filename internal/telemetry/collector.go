package telemetry

import (
	"math"
	"sync"
	"sync/atomic"
)

// Config labels and tunes a Collector.
type Config struct {
	// Strategy and Session label every exposed metric series — the
	// scheduling strategy name and, under a shared worker pool, which
	// session the series belongs to (default "0").
	Strategy string
	Session  string
	// Shard labels the series with the shard currently hosting the
	// session (fleet mode). Empty omits the label entirely, keeping
	// single-engine expositions unchanged. Migration updates it at run
	// time via SetShard.
	Shard string
	// SLO sets the deadline-miss budget (zero value = 5 per 10,000).
	SLO SLOConfig
}

func (c Config) withDefaults() Config {
	if c.Strategy == "" {
		c.Strategy = "unknown"
	}
	if c.Session == "" {
		c.Session = "0"
	}
	return c
}

// Collector is one engine's telemetry: latency histograms, the rolling
// per-second ring, the SLO budget window, and the fault/governor/stall
// counters. RecordCycle is the audio-path entry point and is
// allocation-free; everything else is snapshot-path. The mutex guards
// the ring and the SLO window and is taken once per cycle, mirroring the
// engine's liveStats discipline; the histograms and counters are atomic
// and lock-free.
type Collector struct {
	cfg Config

	// shard is the live shard label (see Config.Shard); atomic because
	// migration rewrites it while scrapes read it.
	shard atomic.Pointer[string]

	// APC and Graph are the cycle-latency histograms (whole APC and the
	// graph component).
	APC   Histogram
	Graph Histogram

	cycles      atomic.Uint64
	misses      atomic.Uint64
	faults      atomic.Uint64
	quarantines atomic.Uint64
	stalls      atomic.Uint64
	govChanges  atomic.Uint64
	incidents   atomic.Uint64
	govLevel    atomic.Int32
	busDrops    atomic.Int64

	// Admission-control series (all off-path: the gate and the
	// predictive monitor write them, never the cycle thread).
	admBoundUS    atomic.Uint64 // float64 bits: latest analytical bound
	admHeadroomUS atomic.Uint64 // float64 bits: envelope − bound
	admDegrades   atomic.Uint64 // sessions admitted pre-degraded
	admRefusedEd  atomic.Uint64 // edits rejected as unschedulable
	admPredicted  atomic.Uint64 // predictive overload excursions

	mu   sync.Mutex
	ring ring
	slo  *sloWindow
}

// NewCollector builds a collector for the given labels and SLO budget.
func NewCollector(cfg Config) *Collector {
	cfg = cfg.withDefaults()
	c := &Collector{cfg: cfg, slo: newSLOWindow(cfg.SLO)}
	c.shard.Store(&cfg.Shard)
	return c
}

// Strategy returns the collector's strategy label.
func (c *Collector) Strategy() string { return c.cfg.Strategy }

// Session returns the collector's session label.
func (c *Collector) Session() string { return c.cfg.Session }

// Shard returns the live shard label ("" = not in a fleet).
func (c *Collector) Shard() string { return *c.shard.Load() }

// SetShard rewrites the shard label — called once per migration, never
// on the audio path.
func (c *Collector) SetShard(s string) { c.shard.Store(&s) }

// RecordCycle records one completed APC: histogram samples, the
// per-second ring slot, and the SLO window. unixSec is the wall-clock
// second the cycle completed in. It returns true exactly when this
// cycle's miss pushes the rolling window past its budget — the caller's
// cue to trigger the flight recorder. Allocation-free; single writer
// (the cycle thread).
func (c *Collector) RecordCycle(unixSec int64, apcNS, graphNS int64, miss bool, govLevel int32) (budgetCrossed bool) {
	c.APC.RecordNS(apcNS)
	c.Graph.RecordNS(graphNS)
	c.cycles.Add(1)
	if miss {
		c.misses.Add(1)
	}
	c.govLevel.Store(govLevel)

	c.mu.Lock()
	s := c.ring.slotFor(unixSec)
	s.Cycles++
	s.APCSumNS += apcNS
	if miss {
		s.Misses++
	}
	if govLevel > s.GovLevel {
		s.GovLevel = govLevel
	}
	s.BusDrops = c.busDrops.Load()
	budgetCrossed = c.slo.add(miss)
	c.mu.Unlock()
	return budgetCrossed
}

// RecordFault counts one contained node panic (worker thread; cheap).
func (c *Collector) RecordFault(quarantined bool) {
	c.faults.Add(1)
	if quarantined {
		c.quarantines.Add(1)
	}
	c.mu.Lock()
	if s := c.ring.current(); s != nil {
		s.Faults++
		if quarantined {
			s.Quarantines++
		}
	}
	c.mu.Unlock()
}

// RecordStall counts one watchdog detection (watchdog goroutine).
func (c *Collector) RecordStall() {
	c.stalls.Add(1)
	c.mu.Lock()
	if s := c.ring.current(); s != nil {
		s.Stalls++
	}
	c.mu.Unlock()
}

// RecordGovTransition counts one governor level change (cycle thread).
func (c *Collector) RecordGovTransition(to int32) {
	c.govChanges.Add(1)
	c.govLevel.Store(to)
}

// RecordIncident counts one flight-recorder trigger.
func (c *Collector) RecordIncident() { c.incidents.Add(1) }

// SetBusDrops publishes the middleware bus's cumulative drop count
// (off-path gauge; the app facade updates it at health-report rate).
func (c *Collector) SetBusDrops(n int64) { c.busDrops.Store(n) }

// SetAdmissionBound publishes the latest analytical response-time bound
// and its headroom against the envelope, in µs (admission gate and
// predictive monitor; off-path gauges).
func (c *Collector) SetAdmissionBound(boundUS, headroomUS float64) {
	c.admBoundUS.Store(math.Float64bits(boundUS))
	c.admHeadroomUS.Store(math.Float64bits(headroomUS))
}

// AdmissionBound returns the published (bound, headroom) gauge pair in
// µs (0, 0 until the gate has analyzed anything).
func (c *Collector) AdmissionBound() (boundUS, headroomUS float64) {
	return math.Float64frombits(c.admBoundUS.Load()), math.Float64frombits(c.admHeadroomUS.Load())
}

// RecordAdmissionDegrade counts one session admitted pre-degraded.
func (c *Collector) RecordAdmissionDegrade() { c.admDegrades.Add(1) }

// RecordRefusedEdit counts one edit rejected as unschedulable.
func (c *Collector) RecordRefusedEdit() { c.admRefusedEd.Add(1) }

// RecordPredictedOverload counts one predictive overload excursion (the
// recomputed bound crossing the envelope before misses occur).
func (c *Collector) RecordPredictedOverload() { c.admPredicted.Add(1) }

// SLO returns the budget tracker's current status.
func (c *Collector) SLO() SLOStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.slo.status(c.cycles.Load(), c.misses.Load(), &c.ring)
}

// Series returns the most recent n seconds of the rolling ring, oldest
// first (n ≤ RingSeconds).
func (c *Collector) Series(n int) []RingSlot {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ring.lastN(n)
}

// Totals is the counter snapshot used by the exposition writer and the
// incident bundle.
type Totals struct {
	Cycles         uint64 `json:"cycles"`
	DeadlineMisses uint64 `json:"deadline_misses"`
	Faults         uint64 `json:"faults"`
	Quarantines    uint64 `json:"quarantines"`
	Stalls         uint64 `json:"stalls"`
	GovTransitions uint64 `json:"gov_transitions"`
	Incidents      uint64 `json:"incidents"`
	GovLevel       int32  `json:"gov_level"`
	BusDrops       int64  `json:"bus_drops"`

	// Admission-control counters and gauges (0 when the gate is off).
	AdmissionDegrades  uint64  `json:"admission_degrades"`
	RefusedEdits       uint64  `json:"refused_edits"`
	PredictedOverloads uint64  `json:"predicted_overloads"`
	AdmissionBoundUS   float64 `json:"admission_bound_us"`
	AdmissionHeadroom  float64 `json:"admission_headroom_us"`
}

// Totals returns the counter snapshot.
func (c *Collector) Totals() Totals {
	return Totals{
		Cycles:         c.cycles.Load(),
		DeadlineMisses: c.misses.Load(),
		Faults:         c.faults.Load(),
		Quarantines:    c.quarantines.Load(),
		Stalls:         c.stalls.Load(),
		GovTransitions: c.govChanges.Load(),
		Incidents:      c.incidents.Load(),
		GovLevel:       c.govLevel.Load(),
		BusDrops:       c.busDrops.Load(),

		AdmissionDegrades:  c.admDegrades.Load(),
		RefusedEdits:       c.admRefusedEd.Load(),
		PredictedOverloads: c.admPredicted.Load(),
		AdmissionBoundUS:   math.Float64frombits(c.admBoundUS.Load()),
		AdmissionHeadroom:  math.Float64frombits(c.admHeadroomUS.Load()),
	}
}

// Rates1m summarizes the last minute of the ring: cycle rate in Hz and
// miss rate as a fraction (snapshot path).
func (c *Collector) Rates1m() (cycleHz, missRate float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cycles, misses := c.ring.windowSums(60)
	n := c.ring.valid
	if n > 60 {
		n = 60
	}
	if n > 0 {
		cycleHz = float64(cycles) / float64(n)
	}
	if cycles > 0 {
		missRate = float64(misses) / float64(cycles)
	}
	return cycleHz, missRate
}
