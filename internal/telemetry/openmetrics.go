package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"sync"
	"time"
)

// OpenMetrics / Prometheus text exposition for a set of collectors. The
// writer groups samples by metric family (one # HELP / # TYPE header per
// family, then one sample per collector, labelled by strategy and
// session) and terminates the document with # EOF as OpenMetrics
// requires. Counter families carry the _total suffix; histogram families
// emit cumulative le buckets plus _sum and _count.

// Registry is an ordered set of collectors exposed on one /metrics
// endpoint — one per engine session.
type Registry struct {
	mu   sync.Mutex
	cols []*Collector
}

// NewRegistry builds a registry over the given collectors.
func NewRegistry(cols ...*Collector) *Registry {
	r := &Registry{}
	for _, c := range cols {
		r.Add(c)
	}
	return r
}

// Add registers a collector. Nil collectors are ignored.
func (r *Registry) Add(c *Collector) {
	if c == nil {
		return
	}
	r.mu.Lock()
	r.cols = append(r.cols, c)
	r.mu.Unlock()
}

// Collectors snapshots the registered collectors.
func (r *Registry) Collectors() []*Collector {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Collector, len(r.cols))
	copy(out, r.cols)
	return out
}

// counterFamily and gaugeFamily describe scalar families generically so
// the writer stays one loop, not one block per metric.
type scalarFamily struct {
	name, help string
	value      func(*Collector) float64
}

var counterFamilies = []scalarFamily{
	{"djstar_cycles_total", "Audio processing cycles completed.",
		func(c *Collector) float64 { return float64(c.cycles.Load()) }},
	{"djstar_deadline_misses_total", "Cycles that exceeded the 2.902 ms packet deadline.",
		func(c *Collector) float64 { return float64(c.misses.Load()) }},
	{"djstar_faults_recovered_total", "Node panics contained by the scheduler.",
		func(c *Collector) float64 { return float64(c.faults.Load()) }},
	{"djstar_quarantines_total", "Node quarantine transitions.",
		func(c *Collector) float64 { return float64(c.quarantines.Load()) }},
	{"djstar_stalls_total", "Stall watchdog detections.",
		func(c *Collector) float64 { return float64(c.stalls.Load()) }},
	{"djstar_governor_transitions_total", "Deadline governor level changes.",
		func(c *Collector) float64 { return float64(c.govChanges.Load()) }},
	{"djstar_incidents_total", "Flight recorder incident triggers.",
		func(c *Collector) float64 { return float64(c.incidents.Load()) }},
	{"djstar_bus_dropped_events_total", "Middleware bus events dropped by slow subscribers.",
		func(c *Collector) float64 { return float64(c.busDrops.Load()) }},
	{"djstar_admission_degrades_total", "Sessions admitted pre-degraded by the admission gate.",
		func(c *Collector) float64 { return float64(c.admDegrades.Load()) }},
	{"djstar_admission_refused_edits_total", "Live edits rejected as unschedulable by the admission gate.",
		func(c *Collector) float64 { return float64(c.admRefusedEd.Load()) }},
	{"djstar_admission_predicted_overloads_total", "Predictive overload excursions (analytical bound crossed the envelope before misses).",
		func(c *Collector) float64 { return float64(c.admPredicted.Load()) }},
}

var gaugeFamilies = []scalarFamily{
	{"djstar_governor_level", "Current governor degradation level (0 = normal ... 3 = critical).",
		func(c *Collector) float64 { return float64(c.govLevel.Load()) }},
	{"djstar_slo_budget_remaining_ratio", "Unspent fraction of the rolling deadline-miss budget.",
		func(c *Collector) float64 { return c.SLO().BudgetRemaining }},
	{"djstar_cycle_rate_hz", "Cycle completion rate over the last minute.",
		func(c *Collector) float64 { hz, _ := c.Rates1m(); return hz }},
	{"djstar_miss_rate_1m", "Deadline miss fraction over the last minute.",
		func(c *Collector) float64 { _, mr := c.Rates1m(); return mr }},
	{"djstar_admission_bound_seconds", "Latest analytical response-time bound from the admission gate.",
		func(c *Collector) float64 { b, _ := c.AdmissionBound(); return b / 1e6 }},
	{"djstar_admission_headroom_seconds", "Deadline envelope minus the analytical bound (negative = predicted overload).",
		func(c *Collector) float64 { _, h := c.AdmissionBound(); return h / 1e6 }},
}

// WriteOpenMetrics writes the full exposition document for every
// registered collector.
func (r *Registry) WriteOpenMetrics(w io.Writer) error {
	bw := bufio.NewWriter(w)
	cols := r.Collectors()
	for _, f := range counterFamilies {
		writeHeader(bw, f.name, f.help, "counter")
		for _, c := range cols {
			writeSample(bw, f.name, c, "", f.value(c))
		}
	}
	for _, f := range gaugeFamilies {
		writeHeader(bw, f.name, f.help, "gauge")
		for _, c := range cols {
			writeSample(bw, f.name, c, "", f.value(c))
		}
	}
	// Burn-rate gauge with a window label.
	writeHeader(bw, "djstar_slo_burn_rate", "Deadline-miss burn rate (observed rate / budget rate) per window.", "gauge")
	for _, c := range cols {
		s := c.SLO()
		writeSample(bw, "djstar_slo_burn_rate", c, `window="1m"`, s.BurnRate1m)
		writeSample(bw, "djstar_slo_burn_rate", c, `window="5m"`, s.BurnRate5m)
		writeSample(bw, "djstar_slo_burn_rate", c, `window="15m"`, s.BurnRate15m)
	}
	writeHistogramFamily(bw, "djstar_apc_seconds", "APC cycle time.", cols,
		func(c *Collector) *Histogram { return &c.APC })
	writeHistogramFamily(bw, "djstar_graph_seconds", "Task-graph execution time within the APC.", cols,
		func(c *Collector) *Histogram { return &c.Graph })
	fmt.Fprint(bw, "# EOF\n")
	return bw.Flush()
}

func writeHeader(w io.Writer, name, help, typ string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

func writeSample(w io.Writer, name string, c *Collector, extraLabel string, v float64) {
	if extraLabel != "" {
		extraLabel = "," + extraLabel
	}
	fmt.Fprintf(w, "%s{%s%s} %s\n", name, c.labels(), extraLabel, formatValue(v))
}

// labels renders the collector's identifying label set. The shard label
// only appears in fleet mode, so single-engine expositions are
// byte-identical to earlier versions.
func (c *Collector) labels() string {
	if s := c.Shard(); s != "" {
		return fmt.Sprintf("strategy=%q,session=%q,shard=%q", c.cfg.Strategy, c.cfg.Session, s)
	}
	return fmt.Sprintf("strategy=%q,session=%q", c.cfg.Strategy, c.cfg.Session)
}

func writeHistogramFamily(w io.Writer, name, help string, cols []*Collector, h func(*Collector) *Histogram) {
	writeHeader(w, name, help, "histogram")
	for _, c := range cols {
		hist := h(c)
		labels := c.labels()
		for _, b := range hist.Buckets() {
			le := "+Inf"
			if !math.IsInf(b.UpperSeconds, 1) {
				le = formatValue(b.UpperSeconds)
			}
			fmt.Fprintf(w, "%s_bucket{%s,le=%q} %d\n", name, labels, le, b.CumulativeCount)
		}
		fmt.Fprintf(w, "%s_sum{%s} %s\n", name, labels, formatValue(hist.SumSeconds()))
		fmt.Fprintf(w, "%s_count{%s} %d\n", name, labels, hist.Count())
	}
}

// formatValue renders a float the way the exposition format expects:
// integral values without an exponent, everything else in shortest form.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// Handler serves the registry: /metrics (exposition text) and /api/slo
// (per-collector SLOStatus JSON).
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteOpenMetrics(w)
	})
	mux.HandleFunc("/api/slo", func(w http.ResponseWriter, _ *http.Request) {
		type entry struct {
			Strategy string    `json:"strategy"`
			Session  string    `json:"session"`
			Shard    string    `json:"shard,omitempty"`
			SLO      SLOStatus `json:"slo"`
		}
		var out []entry
		for _, c := range r.Collectors() {
			out = append(out, entry{c.cfg.Strategy, c.cfg.Session, c.Shard(), c.SLO()})
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(out)
	})
	return mux
}

// Server is a standalone metrics endpoint (djstar -metrics): just the
// registry handler, no pprof, no engine coupling.
type Server struct {
	srv *http.Server
	ln  net.Listener
}

// Serve listens on addr and serves the registry until Close.
func (r *Registry) Serve(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		srv: &http.Server{Handler: r.Handler(), ReadHeaderTimeout: 5 * time.Second},
		ln:  ln,
	}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down.
func (s *Server) Close() error { return s.srv.Close() }
