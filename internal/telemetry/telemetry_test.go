package telemetry

import (
	"math"
	"testing"
)

func TestHistogramBucketMapping(t *testing.T) {
	// Everything below the 1.024 µs floor lands in bucket 0.
	for _, ns := range []int64{-5, 0, 1, 1023} {
		if b := bucketOf(ns); b != 0 {
			t.Fatalf("bucketOf(%d) = %d, want 0", ns, b)
		}
	}
	// Bucket boundaries are inclusive upper bounds: a value equal to
	// bucketUpperNS(b) must map to b, and +1 must map to b+1.
	for b := 0; b < histBuckets-1; b++ {
		up := bucketUpperNS(b)
		if got := bucketOf(up); got != b {
			t.Fatalf("bucketOf(upper(%d)=%d) = %d, want %d", b, up, got, b)
		}
		if got := bucketOf(up + 1); got != b+1 {
			t.Fatalf("bucketOf(upper(%d)+1=%d) = %d, want %d", b, up+1, got, b+1)
		}
	}
	// Upper bounds are strictly increasing.
	for b := 1; b < histBuckets; b++ {
		if bucketUpperNS(b) <= bucketUpperNS(b-1) {
			t.Fatalf("upper(%d)=%d <= upper(%d)=%d", b, bucketUpperNS(b), b-1, bucketUpperNS(b-1))
		}
	}
	// Log-linear sub-bucketing bounds relative error: the bucket width
	// over its lower bound is at most 1/histSub above the floor region.
	for b := histSub + 1; b < histBuckets; b++ {
		lo, hi := bucketUpperNS(b-1)+1, bucketUpperNS(b)
		if ratio := float64(hi-lo+1) / float64(lo); ratio > 1.0/histSub+1e-9 {
			t.Fatalf("bucket %d relative width %.4f > %.4f", b, ratio, 1.0/histSub)
		}
	}
}

func TestHistogramRecordAndBuckets(t *testing.T) {
	var h Histogram
	// 300 µs and 2.5 ms — typical APC values at both ends.
	h.RecordNS(300_000)
	h.RecordNS(300_000)
	h.RecordNS(2_500_000)
	if h.Count() != 3 {
		t.Fatalf("count = %d, want 3", h.Count())
	}
	if got, want := h.SumSeconds(), 3.1e-3; math.Abs(got-want) > 1e-12 {
		t.Fatalf("sum = %v s, want %v", got, want)
	}
	bs := h.Buckets()
	if len(bs) < 2 {
		t.Fatalf("buckets = %v, want at least a populated and a +Inf bucket", bs)
	}
	last := bs[len(bs)-1]
	if !math.IsInf(last.UpperSeconds, 1) || last.CumulativeCount != 3 {
		t.Fatalf("+Inf bucket = %+v, want cumulative 3", last)
	}
	// Cumulative counts are monotone and end at the total.
	prev := uint64(0)
	for _, b := range bs {
		if b.CumulativeCount < prev {
			t.Fatalf("cumulative counts not monotone: %v", bs)
		}
		prev = b.CumulativeCount
	}
	// The quantile estimate brackets the recorded values within bucket
	// resolution (≤ 12.5 % high).
	if q := h.QuantileSeconds(0.5); q < 300e-6 || q > 300e-6*1.3 {
		t.Fatalf("p50 = %v s, want ≈ 300 µs", q)
	}
	if q := h.QuantileSeconds(1.0); q < 2.5e-3 || q > 2.5e-3*1.3 {
		t.Fatalf("p100 = %v s, want ≈ 2.5 ms", q)
	}
}

func TestHistogramRecordDoesNotAllocate(t *testing.T) {
	var h Histogram
	n := testing.AllocsPerRun(1000, func() { h.RecordNS(1_500_000) })
	if n != 0 {
		t.Fatalf("Histogram.RecordNS allocates %.1f per op, want 0", n)
	}
}

func TestRingAdvanceAndSkips(t *testing.T) {
	var r ring
	s := r.slotFor(100)
	s.Cycles = 10
	s.Misses = 1
	// Advancing 3 seconds leaves two zero slots for the skipped seconds.
	s = r.slotFor(103)
	s.Cycles = 20
	if r.valid != 4 {
		t.Fatalf("valid = %d, want 4", r.valid)
	}
	got := r.lastN(4)
	if len(got) != 4 {
		t.Fatalf("lastN(4) = %d slots, want 4", len(got))
	}
	wantCycles := []uint64{10, 0, 0, 20}
	for i, w := range wantCycles {
		if got[i].Cycles != w {
			t.Fatalf("slot %d cycles = %d, want %d (%+v)", i, got[i].Cycles, w, got)
		}
		if got[i].UnixSec != int64(100+i) {
			t.Fatalf("slot %d sec = %d, want %d", i, got[i].UnixSec, 100+i)
		}
	}
	cycles, misses := r.windowSums(4)
	if cycles != 30 || misses != 1 {
		t.Fatalf("windowSums = %d/%d, want 30/1", cycles, misses)
	}
	// A window smaller than the filled depth only sees recent slots.
	cycles, _ = r.windowSums(1)
	if cycles != 20 {
		t.Fatalf("windowSums(1) = %d, want 20", cycles)
	}
}

func TestRingClockBackwards(t *testing.T) {
	var r ring
	r.slotFor(100).Cycles = 1
	// An older timestamp folds into the current slot instead of
	// corrupting the series.
	s := r.slotFor(50)
	s.Cycles++
	if r.valid != 1 {
		t.Fatalf("valid = %d, want 1 (no backwards growth)", r.valid)
	}
	if cur := r.current(); cur.Cycles != 2 || cur.UnixSec != 100 {
		t.Fatalf("current = %+v, want 2 cycles at sec 100", cur)
	}
}

func TestRingWrapAround(t *testing.T) {
	var r ring
	for sec := int64(0); sec < RingSeconds+10; sec++ {
		r.slotFor(sec).Cycles = 1
	}
	if r.valid != RingSeconds {
		t.Fatalf("valid = %d, want %d", r.valid, RingSeconds)
	}
	got := r.lastN(RingSeconds)
	if got[0].UnixSec != 10 || got[len(got)-1].UnixSec != RingSeconds+9 {
		t.Fatalf("window spans %d..%d, want 10..%d",
			got[0].UnixSec, got[len(got)-1].UnixSec, RingSeconds+9)
	}
}

func TestSLOWindowCrossingAndRearm(t *testing.T) {
	// Budget: 5 per 10k over a 1000-cycle window → allowed = 0.5 when
	// filled, so the 1st miss in a full window crosses.
	w := newSLOWindow(SLOConfig{TargetPer10k: 5, WindowCycles: 1000})
	for i := 0; i < 1000; i++ {
		if w.add(false) {
			t.Fatal("clean cycle crossed the budget")
		}
	}
	if crossed := w.add(true); !crossed {
		t.Fatal("first over-budget miss did not report a crossing")
	}
	// Level-triggered repeats must not re-report: still over budget.
	if crossed := w.add(true); crossed {
		t.Fatal("second miss re-reported while already exhausted")
	}
	if !w.exhausted {
		t.Fatal("window not latched exhausted")
	}
	// Recovery: clean cycles evict the misses; once the window is back
	// at ≤ half budget the trigger re-arms and a new burst crosses again.
	for i := 0; i < 1100; i++ {
		w.add(false)
	}
	if w.misses != 0 || w.exhausted {
		t.Fatalf("window after recovery: misses=%d exhausted=%v, want 0/false", w.misses, w.exhausted)
	}
	if crossed := w.add(true); !crossed {
		t.Fatal("post-recovery burst did not cross again")
	}
}

func TestSLOWindowExactEviction(t *testing.T) {
	// A miss leaves the window exactly WindowCycles later.
	w := newSLOWindow(SLOConfig{TargetPer10k: 5, WindowCycles: 64})
	w.add(true)
	for i := 0; i < 63; i++ {
		w.add(false)
	}
	if w.misses != 1 {
		t.Fatalf("misses before eviction = %d, want 1", w.misses)
	}
	w.add(false) // the 65th cycle evicts the miss
	if w.misses != 0 {
		t.Fatalf("misses after eviction = %d, want 0", w.misses)
	}
}

func TestSLOStatus(t *testing.T) {
	c := NewCollector(Config{Strategy: "busy", SLO: SLOConfig{TargetPer10k: 5, WindowCycles: 1000}})
	sec := int64(1000)
	for i := 0; i < 2000; i++ {
		miss := i%1000 == 0 // 2 misses total, 1 in the current window
		c.RecordCycle(sec+int64(i/100), 1_000_000, 500_000, miss, 0)
	}
	s := c.SLO()
	if s.TotalCycles != 2000 || s.TotalMisses != 2 {
		t.Fatalf("totals = %d/%d, want 2000/2", s.TotalCycles, s.TotalMisses)
	}
	if s.WindowFilled != 1000 || s.WindowMisses != 1 {
		t.Fatalf("window = %d/%d, want 1 miss of 1000", s.WindowMisses, s.WindowFilled)
	}
	if s.AllowedMisses != 0.5 || !s.Exhausted {
		t.Fatalf("allowed=%v exhausted=%v, want 0.5/true", s.AllowedMisses, s.Exhausted)
	}
	if s.BudgetRemaining != 0 {
		t.Fatalf("budget remaining = %v, want 0 (overspent)", s.BudgetRemaining)
	}
	// Burn rate: 2 misses / 2000 cycles = 1e-3 rate vs 5e-4 target = 2×.
	if math.Abs(s.BurnRate1m-2.0) > 1e-9 {
		t.Fatalf("burn rate 1m = %v, want 2.0", s.BurnRate1m)
	}
}

func TestCollectorRecordCycleDoesNotAllocate(t *testing.T) {
	c := NewCollector(Config{Strategy: "busy"})
	sec := int64(7_000_000)
	i := int64(0)
	n := testing.AllocsPerRun(2000, func() {
		i++
		c.RecordCycle(sec+i/500, 1_200_000, 450_000, i%400 == 0, 1)
	})
	if n != 0 {
		t.Fatalf("Collector.RecordCycle allocates %.1f per op, want 0", n)
	}
}

func TestCollectorRatesAndTotals(t *testing.T) {
	c := NewCollector(Config{})
	for i := 0; i < 100; i++ {
		c.RecordCycle(500, 1_000_000, 400_000, i < 10, 2)
	}
	c.RecordFault(true)
	c.RecordFault(false)
	c.RecordStall()
	c.RecordGovTransition(3)
	c.SetBusDrops(7)
	tot := c.Totals()
	if tot.Cycles != 100 || tot.DeadlineMisses != 10 {
		t.Fatalf("cycles/misses = %d/%d, want 100/10", tot.Cycles, tot.DeadlineMisses)
	}
	if tot.Faults != 2 || tot.Quarantines != 1 || tot.Stalls != 1 {
		t.Fatalf("faults/quarantines/stalls = %d/%d/%d, want 2/1/1", tot.Faults, tot.Quarantines, tot.Stalls)
	}
	if tot.GovTransitions != 1 || tot.GovLevel != 3 || tot.BusDrops != 7 {
		t.Fatalf("gov/level/drops = %d/%d/%d, want 1/3/7", tot.GovTransitions, tot.GovLevel, tot.BusDrops)
	}
	hz, mr := c.Rates1m()
	if hz != 100 || mr != 0.1 {
		t.Fatalf("rates = %v Hz / %v, want 100/0.1", hz, mr)
	}
	// The ring slot carries the fault-tolerance events and gov level.
	series := c.Series(1)
	if len(series) != 1 {
		t.Fatalf("series length = %d, want 1", len(series))
	}
	s := series[0]
	if s.Faults != 2 || s.Quarantines != 1 || s.Stalls != 1 || s.GovLevel != 2 {
		t.Fatalf("slot = %+v, want faults 2, quarantines 1, stalls 1, gov 2", s)
	}
}
