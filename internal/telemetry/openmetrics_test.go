package telemetry

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
)

// lintExposition validates the Prometheus/OpenMetrics text format rules
// CI also enforces (scripts/lint_metrics.sh): every sample belongs to a
// family announced by # HELP and # TYPE lines, counter family names end
// in _total (histograms in _bucket/_sum/_count), histogram cumulative
// counts are monotone in le, and the document terminates with # EOF.
// It returns the parsed samples for cross-scrape checks.
func lintExposition(t *testing.T, doc string) map[string]float64 {
	t.Helper()
	samples := map[string]float64{}
	types := map[string]string{}
	helped := map[string]bool{}
	sawEOF := false
	sc := bufio.NewScanner(strings.NewReader(doc))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if sawEOF {
			t.Fatalf("content after # EOF: %q", line)
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) < 3 {
				if line == "# EOF" {
					sawEOF = true
					continue
				}
				t.Fatalf("malformed comment line %q", line)
			}
			switch fields[1] {
			case "HELP":
				helped[fields[2]] = true
			case "TYPE":
				if len(fields) != 4 {
					t.Fatalf("malformed TYPE line %q", line)
				}
				types[fields[2]] = fields[3]
			case "EOF":
				sawEOF = true
			default:
				t.Fatalf("unknown comment keyword in %q", line)
			}
			continue
		}
		// Sample line: name{labels} value
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		series, valStr := line[:sp], line[sp+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("sample %q: bad value: %v", line, err)
		}
		name := series
		if i := strings.IndexByte(series, '{'); i >= 0 {
			name = series[:i]
			if !strings.HasSuffix(series, "}") {
				t.Fatalf("sample %q: unterminated label set", line)
			}
		}
		family := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(name, suffix) {
				if typ := types[strings.TrimSuffix(name, suffix)]; typ == "histogram" {
					family = strings.TrimSuffix(name, suffix)
				}
			}
		}
		typ, ok := types[family]
		if !ok {
			t.Fatalf("sample %q has no # TYPE header", line)
		}
		if !helped[family] {
			t.Fatalf("sample %q has no # HELP header", line)
		}
		if typ == "counter" && !strings.HasSuffix(family, "_total") {
			t.Fatalf("counter family %q does not end in _total", family)
		}
		if typ == "counter" && val < 0 {
			t.Fatalf("counter sample %q is negative", line)
		}
		samples[series] = val
	}
	if !sawEOF {
		t.Fatal("exposition does not end with # EOF")
	}
	// Histogram le-bucket monotonicity: group _bucket series by their
	// non-le labels and check cumulative counts never decrease.
	type bucketSeen struct {
		lastLE  float64
		lastVal float64
	}
	hist := map[string]*bucketSeen{}
	sc = bufio.NewScanner(strings.NewReader(doc))
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "#") || !strings.Contains(line, "_bucket{") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		series, valStr := line[:sp], line[sp+1:]
		val, _ := strconv.ParseFloat(valStr, 64)
		leStart := strings.Index(series, `le="`)
		if leStart < 0 {
			t.Fatalf("bucket sample %q has no le label", line)
		}
		leEnd := strings.IndexByte(series[leStart+4:], '"')
		leStr := series[leStart+4 : leStart+4+leEnd]
		le := 0.0
		if leStr == "+Inf" {
			le = 1e308
		} else if f, err := strconv.ParseFloat(leStr, 64); err != nil {
			t.Fatalf("bucket sample %q: bad le %q", line, leStr)
		} else {
			le = f
		}
		key := series[:leStart] // family + leading labels identify the series
		if b, ok := hist[key]; ok {
			if le <= b.lastLE {
				t.Fatalf("bucket le not increasing in %q", line)
			}
			if val < b.lastVal {
				t.Fatalf("bucket cumulative count decreased in %q", line)
			}
			b.lastLE, b.lastVal = le, val
		} else {
			hist[key] = &bucketSeen{lastLE: le, lastVal: val}
		}
	}
	return samples
}

func scrapeString(t *testing.T, r *Registry) string {
	t.Helper()
	var buf bytes.Buffer
	if err := r.WriteOpenMetrics(&buf); err != nil {
		t.Fatalf("WriteOpenMetrics: %v", err)
	}
	return buf.String()
}

func TestOpenMetricsExpositionLints(t *testing.T) {
	c := NewCollector(Config{Strategy: "busy", Session: "0"})
	for i := 0; i < 500; i++ {
		c.RecordCycle(100, 1_200_000, 400_000, i%100 == 0, 0)
	}
	c.RecordFault(true)
	reg := NewRegistry(c)
	doc := scrapeString(t, reg)
	samples := lintExposition(t, doc)

	mustHave := []string{
		`djstar_cycles_total{strategy="busy",session="0"}`,
		`djstar_deadline_misses_total{strategy="busy",session="0"}`,
		`djstar_faults_recovered_total{strategy="busy",session="0"}`,
		`djstar_quarantines_total{strategy="busy",session="0"}`,
		`djstar_slo_budget_remaining_ratio{strategy="busy",session="0"}`,
		`djstar_slo_burn_rate{strategy="busy",session="0",window="1m"}`,
		`djstar_apc_seconds_count{strategy="busy",session="0"}`,
		`djstar_graph_seconds_count{strategy="busy",session="0"}`,
	}
	for _, s := range mustHave {
		if _, ok := samples[s]; !ok {
			t.Errorf("exposition missing sample %s", s)
		}
	}
	if got := samples[`djstar_cycles_total{strategy="busy",session="0"}`]; got != 500 {
		t.Errorf("cycles_total = %v, want 500", got)
	}
	if got := samples[`djstar_deadline_misses_total{strategy="busy",session="0"}`]; got != 5 {
		t.Errorf("misses_total = %v, want 5", got)
	}
	if got := samples[`djstar_apc_seconds_count{strategy="busy",session="0"}`]; got != 500 {
		t.Errorf("apc count = %v, want 500", got)
	}
	if !strings.Contains(doc, `djstar_apc_seconds_bucket{strategy="busy",session="0",le="+Inf"} 500`) {
		t.Error("apc histogram missing +Inf bucket at total count")
	}
}

func TestOpenMetricsCountersMonotoneAcrossScrapes(t *testing.T) {
	c := NewCollector(Config{Strategy: "ws", Session: "1"})
	reg := NewRegistry(c)
	record := func(n int) {
		for i := 0; i < n; i++ {
			c.RecordCycle(42, 3_000_000, 2_900_000, true, 1)
		}
	}
	record(100)
	first := lintExposition(t, scrapeString(t, reg))
	record(50)
	c.RecordFault(false)
	second := lintExposition(t, scrapeString(t, reg))
	for series, v1 := range first {
		if !strings.Contains(series, "_total{") {
			continue
		}
		if v2 := second[series]; v2 < v1 {
			t.Errorf("counter %s went backwards: %v -> %v", series, v1, v2)
		}
	}
	if got := second[`djstar_cycles_total{strategy="ws",session="1"}`]; got != 150 {
		t.Errorf("cycles after second scrape = %v, want 150", got)
	}
}

func TestOpenMetricsMultiSessionLabels(t *testing.T) {
	a := NewCollector(Config{Strategy: "pool", Session: "0"})
	b := NewCollector(Config{Strategy: "pool", Session: "1"})
	a.RecordCycle(10, 1_000_000, 500_000, false, 0)
	b.RecordCycle(10, 1_000_000, 500_000, false, 0)
	b.RecordCycle(10, 1_000_000, 500_000, false, 0)
	reg := NewRegistry(a, b)
	samples := lintExposition(t, scrapeString(t, reg))
	if samples[`djstar_cycles_total{strategy="pool",session="0"}`] != 1 {
		t.Error("session 0 series wrong or missing")
	}
	if samples[`djstar_cycles_total{strategy="pool",session="1"}`] != 2 {
		t.Error("session 1 series wrong or missing")
	}
}

func TestRegistryHTTPEndpoints(t *testing.T) {
	c := NewCollector(Config{Strategy: "busy"})
	c.RecordCycle(10, 1_000_000, 500_000, false, 0)
	reg := NewRegistry(c)
	srv, err := reg.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer srv.Close()

	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", srv.Addr()))
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type = %q", ct)
	}
	lintExposition(t, string(body))

	resp, err = http.Get(fmt.Sprintf("http://%s/api/slo", srv.Addr()))
	if err != nil {
		t.Fatalf("GET /api/slo: %v", err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/api/slo status = %d", resp.StatusCode)
	}
	if !strings.Contains(string(body), `"target_per_10k": 5`) {
		t.Fatalf("/api/slo body missing SLO status: %s", body)
	}
}
