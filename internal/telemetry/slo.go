package telemetry

// SLOConfig sets the deadline-miss budget. The zero value selects the
// paper's own result as the objective: at most 5 misses per 10,000
// cycles (§V reports ~5/10k for the four-thread parallel strategies).
type SLOConfig struct {
	// TargetPer10k is the allowed misses per 10,000 cycles (default 5).
	TargetPer10k float64
	// WindowCycles is the rolling budget window in cycles (default
	// 10,000 — the paper's measurement unit).
	WindowCycles int
}

func (c SLOConfig) withDefaults() SLOConfig {
	if c.TargetPer10k <= 0 {
		c.TargetPer10k = 5
	}
	if c.WindowCycles <= 0 {
		c.WindowCycles = 10000
	}
	return c
}

// sloWindow tracks deadline misses over an exact rolling window of
// cycles using a preallocated bitset: one bit per cycle, O(1)
// allocation-free update (the evicted cycle's bit adjusts the count).
type sloWindow struct {
	cfg    SLOConfig
	bits   []uint64
	pos    int // next cycle's bit index
	filled int // cycles recorded, capped at WindowCycles
	misses int // misses among the window's cycles
	// exhausted latches "window misses exceed the budget" for
	// crossing-edge detection (the flight-recorder trigger).
	exhausted bool
}

func newSLOWindow(cfg SLOConfig) *sloWindow {
	cfg = cfg.withDefaults()
	return &sloWindow{
		cfg:  cfg,
		bits: make([]uint64, (cfg.WindowCycles+63)/64),
	}
}

// add records one cycle. It returns true exactly when this cycle pushes
// the window's misses past the allowed budget (a crossing, not a level,
// so one burst triggers one incident).
func (w *sloWindow) add(miss bool) (crossed bool) {
	word, bit := w.pos/64, uint(w.pos%64)
	old := w.bits[word]>>bit&1 == 1
	if w.filled == w.cfg.WindowCycles && old {
		w.misses--
	}
	if miss {
		w.bits[word] |= 1 << bit
		w.misses++
	} else {
		w.bits[word] &^= 1 << bit
	}
	w.pos++
	if w.pos == w.cfg.WindowCycles {
		w.pos = 0
	}
	if w.filled < w.cfg.WindowCycles {
		w.filled++
	}
	allowed := w.allowed()
	if float64(w.misses) > allowed {
		if !w.exhausted {
			w.exhausted = true
			return true
		}
	} else if float64(w.misses) <= allowed*0.5 {
		// Re-arm only after the window has recovered to half budget —
		// hysteresis against re-triggering on every miss of a long burst.
		w.exhausted = false
	}
	return false
}

// allowed is the miss budget for the currently filled window.
func (w *sloWindow) allowed() float64 {
	return w.cfg.TargetPer10k / 10000 * float64(w.filled)
}

// SLOStatus is the budget tracker's point-in-time view.
type SLOStatus struct {
	// TargetPer10k and WindowCycles echo the configuration.
	TargetPer10k float64 `json:"target_per_10k"`
	WindowCycles int     `json:"window_cycles"`

	// TotalCycles and TotalMisses are whole-run counters.
	TotalCycles uint64 `json:"total_cycles"`
	TotalMisses uint64 `json:"total_misses"`

	// WindowFilled is how many cycles the rolling window currently
	// holds; WindowMisses how many of them missed; AllowedMisses the
	// budget for that many cycles.
	WindowFilled  int     `json:"window_filled"`
	WindowMisses  int     `json:"window_misses"`
	AllowedMisses float64 `json:"allowed_misses"`

	// BudgetRemaining is the unspent fraction of the window budget,
	// clamped to [0, 1]: 1 = clean, 0 = exhausted.
	BudgetRemaining float64 `json:"budget_remaining"`
	// Exhausted reports the window is over budget right now.
	Exhausted bool `json:"exhausted"`

	// BurnRate1m/5m/15m are the observed miss rate over each wall-clock
	// window divided by the target rate — the standard SRE burn rate
	// (1.0 = spending exactly the budget; >1 = on course to exhaust it).
	BurnRate1m  float64 `json:"burn_rate_1m"`
	BurnRate5m  float64 `json:"burn_rate_5m"`
	BurnRate15m float64 `json:"burn_rate_15m"`
}

// status assembles the view (collector mutex held).
func (w *sloWindow) status(totalCycles, totalMisses uint64, r *ring) SLOStatus {
	s := SLOStatus{
		TargetPer10k:  w.cfg.TargetPer10k,
		WindowCycles:  w.cfg.WindowCycles,
		TotalCycles:   totalCycles,
		TotalMisses:   totalMisses,
		WindowFilled:  w.filled,
		WindowMisses:  w.misses,
		AllowedMisses: w.allowed(),
		Exhausted:     w.exhausted,
	}
	if s.AllowedMisses > 0 {
		rem := (s.AllowedMisses - float64(s.WindowMisses)) / s.AllowedMisses
		if rem < 0 {
			rem = 0
		}
		if rem > 1 {
			rem = 1
		}
		s.BudgetRemaining = rem
	} else if s.WindowMisses == 0 {
		s.BudgetRemaining = 1
	}
	target := w.cfg.TargetPer10k / 10000
	burn := func(seconds int) float64 {
		cycles, misses := r.windowSums(seconds)
		if cycles == 0 || target <= 0 {
			return 0
		}
		return float64(misses) / float64(cycles) / target
	}
	s.BurnRate1m = burn(60)
	s.BurnRate5m = burn(300)
	s.BurnRate15m = burn(900)
	return s
}
