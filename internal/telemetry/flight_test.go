package telemetry

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"djstar/internal/obs"
)

func TestRecorderEventRingWrapsOldestFirst(t *testing.T) {
	c := NewCollector(Config{})
	r := NewRecorder(c, RecorderConfig{Nodes: 2, Events: 4})
	for i := uint64(1); i <= 6; i++ {
		r.AddEvent(i, "fault", "n")
	}
	events, _ := r.snapshot()
	if len(events) != 4 {
		t.Fatalf("retained %d events, want ring depth 4", len(events))
	}
	for i, ev := range events {
		if want := uint64(3 + i); ev.Cycle != want {
			t.Fatalf("event %d cycle = %d, want %d (oldest first)", i, ev.Cycle, want)
		}
	}
}

func TestRecorderAddTraceDoesNotAllocate(t *testing.T) {
	c := NewCollector(Config{})
	r := NewRecorder(c, RecorderConfig{Nodes: 3, Traces: 4})
	tr := obs.CycleTrace{
		Cycle:   9,
		Workers: 2,
		Worker:  []int32{0, 1, 0},
		StartNS: []int64{0, 10, 20},
		EndNS:   []int64{10, 20, 30},
	}
	n := testing.AllocsPerRun(500, func() {
		tr.Cycle++
		r.AddTrace(&tr)
	})
	if n != 0 {
		t.Fatalf("AddTrace allocates %.1f per op, want 0 (preallocated ring)", n)
	}
	_, traces := r.snapshot()
	if len(traces) != 4 {
		t.Fatalf("retained %d traces, want 4", len(traces))
	}
	last := traces[len(traces)-1]
	if last.Cycle != tr.Cycle || len(last.Worker) != 3 || last.EndNS[2] != 30 {
		t.Fatalf("retained trace = %+v, want copy of last added", last)
	}
}

func TestRecorderTriggerDumpAndLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c := NewCollector(Config{Strategy: "busy", Session: "0"})
	c.RecordCycle(100, 1_000_000, 500_000, false, 0)
	r := NewRecorder(c, RecorderConfig{Nodes: 2, Dir: dir})
	r.SetBundleFiller(func(inc *Incident) {
		inc.Threads = 4
		inc.Graph = GraphInfo{
			Names: []string{"a", "b"},
			Order: []int32{0, 1},
			Preds: [][]int32{nil, {0}},
		}
		inc.NodeMeansUS = []float64{10, 20}
		ps := obs.CriticalPath(inc.Graph.Plan(), inc.NodeMeansUS)
		inc.CritPath = &ps
	})
	r.AddEvent(41, "fault", "b")
	r.Trigger(42, TriggerQuarantine)
	r.Flush()

	paths, _ := filepath.Glob(filepath.Join(dir, "incident-*.json"))
	if len(paths) != 1 {
		t.Fatalf("dumped %d bundles, want 1: %v", len(paths), paths)
	}
	inc, err := LoadIncident(paths[0])
	if err != nil {
		t.Fatalf("LoadIncident: %v", err)
	}
	if inc.Reason != TriggerQuarantine || inc.Cycle != 42 {
		t.Fatalf("bundle reason/cycle = %s/%d, want quarantine/42", inc.Reason, inc.Cycle)
	}
	if inc.Strategy != "busy" || inc.Threads != 4 {
		t.Fatalf("bundle identity = %s/%d threads, want busy/4", inc.Strategy, inc.Threads)
	}
	// The trigger itself is retained as the newest event.
	if n := len(inc.Events); n != 2 || inc.Events[n-1].Kind != TriggerQuarantine {
		t.Fatalf("bundle events = %+v, want fault then quarantine trigger", inc.Events)
	}
	if inc.Totals.Incidents != 1 {
		t.Fatalf("incidents total = %d, want 1", inc.Totals.Incidents)
	}
	// Replay reproduces the live critical path exactly.
	ps, err := inc.Replay()
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if ps.LengthUS != inc.CritPath.LengthUS || len(ps.Nodes) != len(inc.CritPath.Nodes) {
		t.Fatalf("replay = %v µs / %d nodes, live = %v µs / %d nodes",
			ps.LengthUS, len(ps.Nodes), inc.CritPath.LengthUS, len(inc.CritPath.Nodes))
	}
}

func TestRecorderCooldownSuppressesDumpStorm(t *testing.T) {
	dir := t.TempDir()
	c := NewCollector(Config{})
	r := NewRecorder(c, RecorderConfig{Nodes: 1, Dir: dir, CooldownSeconds: 60})
	for i := uint64(0); i < 50; i++ {
		r.Trigger(i, TriggerBudget)
	}
	r.Flush()
	paths, _ := filepath.Glob(filepath.Join(dir, "incident-*.json"))
	if len(paths) != 1 {
		t.Fatalf("dumped %d bundles during storm, want 1 (cooldown)", len(paths))
	}
	// Every trigger is still counted and retained even when not dumped.
	if got := c.Totals().Incidents; got != 50 {
		t.Fatalf("incidents total = %d, want 50", got)
	}
}

func TestRecorderNoDirNeverDumps(t *testing.T) {
	c := NewCollector(Config{})
	r := NewRecorder(c, RecorderConfig{Nodes: 1})
	r.Trigger(1, TriggerStall)
	r.Flush()
	if got := c.Totals().Incidents; got != 1 {
		t.Fatalf("incidents total = %d, want 1", got)
	}
}

func TestLoadIncidentRejectsWrongSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "incident-bad.json")
	if err := os.WriteFile(path, []byte(`{"schema_version": 99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadIncident(path); err == nil || !strings.Contains(err.Error(), "schema version") {
		t.Fatalf("LoadIncident on future schema: err = %v, want schema mismatch", err)
	}
}
