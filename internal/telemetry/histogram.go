// Package telemetry is the engine's production-telemetry layer: it turns
// the point-in-time views the observability collector already provides
// (internal/obs) into the longitudinal signals a fleet operator scrapes
// and alerts on — latency histograms, a rolling time series, an SLO
// deadline-miss budget, an OpenMetrics /metrics endpoint, and a flight
// recorder that dumps a self-contained incident bundle when the budget
// blows, a node is quarantined, or the watchdog fires.
//
// The paper's headline result is itself an SLO — ~5 of 10,000 APC cycles
// miss the 2.902 ms deadline (§V) — so the budget tracker defaults to
// exactly that target. Everything recorded on the audio path (histogram
// record, ring tick, SLO window update) is allocation-free; readers take
// a mutex the recorder holds only briefly once per cycle, mirroring the
// obs shard-merge discipline.
package telemetry

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// Histogram is an allocation-free log-bucketed latency histogram.
// Buckets are octaves of nanoseconds split into 4 log-linear
// sub-buckets (relative error ≤ 12.5 %), with everything below 1 µs
// collapsed into the first bucket — the APC operates in the hundreds of
// microseconds, so sub-microsecond resolution is noise. Record is a
// handful of atomic adds from a single writer (the cycle thread);
// readers snapshot concurrently without locks.
type Histogram struct {
	counts [histBuckets]atomic.Uint64
	count  atomic.Uint64
	sumNS  atomic.Uint64
}

const (
	// histSubBits splits every octave into 1<<histSubBits sub-buckets.
	histSubBits = 2
	histSub     = 1 << histSubBits
	// histFloorShift collapses values below 2^histFloorShift ns (1.024 µs)
	// into bucket 0.
	histFloorShift = 10
	// histBuckets covers the scaled range up to ~68 s, far past any
	// plausible cycle time (the stall watchdog fires long before).
	histBuckets = (26-histSubBits)<<histSubBits + histSub
)

// bucketOf maps a nanosecond value to its bucket index.
func bucketOf(ns int64) int {
	if ns < 0 {
		ns = 0
	}
	u := uint64(ns) >> histFloorShift
	if u < histSub {
		return int(u)
	}
	msb := bits.Len64(u) - 1
	sub := (u >> uint(msb-histSubBits)) & (histSub - 1)
	b := int(msb-histSubBits+1)<<histSubBits | int(sub)
	if b >= histBuckets {
		return histBuckets - 1
	}
	return b
}

// bucketUpperNS returns the inclusive upper bound of bucket b in
// nanoseconds (the OpenMetrics `le` boundary).
func bucketUpperNS(b int) int64 {
	if b < histSub {
		return int64(b+1)<<histFloorShift - 1
	}
	msb := b>>histSubBits + histSubBits - 1
	sub := int64(b & (histSub - 1))
	// Addition, not OR: for the octave's last sub-bucket (sub+1 == histSub)
	// the sub term equals the leading bit, and the bound must carry into
	// the next octave (2<<msb), which an OR would silently drop.
	return (int64(1)<<uint(msb)+(sub+1)<<uint(msb-histSubBits))<<histFloorShift - 1
}

// RecordNS adds one nanosecond observation. Allocation-free; safe for a
// single writer with concurrent readers.
func (h *Histogram) RecordNS(ns int64) {
	h.counts[bucketOf(ns)].Add(1)
	h.count.Add(1)
	if ns > 0 {
		h.sumNS.Add(uint64(ns))
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// SumSeconds returns the sum of all observations in seconds.
func (h *Histogram) SumSeconds() float64 { return float64(h.sumNS.Load()) / 1e9 }

// HistogramBucket is one cumulative exposition bucket.
type HistogramBucket struct {
	// UpperSeconds is the bucket's inclusive upper bound (`le`) in
	// seconds; +Inf for the final bucket.
	UpperSeconds float64 `json:"le"`
	// CumulativeCount counts observations ≤ UpperSeconds.
	CumulativeCount uint64 `json:"count"`
}

// Buckets returns the cumulative buckets up to and including the highest
// populated one, followed by the +Inf bucket — the OpenMetrics histogram
// shape. Snapshot path: allocates.
func (h *Histogram) Buckets() []HistogramBucket {
	highest := -1
	var raw [histBuckets]uint64
	for i := range raw {
		raw[i] = h.counts[i].Load()
		if raw[i] > 0 {
			highest = i
		}
	}
	out := make([]HistogramBucket, 0, highest+2)
	var cum uint64
	for i := 0; i <= highest; i++ {
		cum += raw[i]
		out = append(out, HistogramBucket{
			UpperSeconds:    float64(bucketUpperNS(i)) / 1e9,
			CumulativeCount: cum,
		})
	}
	out = append(out, HistogramBucket{
		UpperSeconds:    math.Inf(1),
		CumulativeCount: h.count.Load(),
	})
	return out
}

// QuantileSeconds estimates the q-quantile (0..1) from the bucket
// counts, in seconds. Zero when empty.
func (h *Histogram) QuantileSeconds(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total-1))
	var cum uint64
	for i := 0; i < histBuckets; i++ {
		cum += h.counts[i].Load()
		if cum > rank {
			return float64(bucketUpperNS(i)) / 1e9
		}
	}
	return float64(bucketUpperNS(histBuckets-1)) / 1e9
}
