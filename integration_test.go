// Cross-module integration tests: end-to-end flows through the engine,
// schedulers, timecode front end and the schedule simulator.
package djstar

import (
	"math"
	"testing"

	"djstar/internal/audio"
	"djstar/internal/engine"
	"djstar/internal/graph"
	"djstar/internal/rescon"
	"djstar/internal/sched"
)

func integConfig() graph.Config {
	cfg := graph.DefaultConfig()
	cfg.TrackBars = 2
	return cfg
}

// TestEngineAudioIdenticalAcrossStrategies runs the *full engine* (TP +
// GP + Graph + VC) under every strategy and asserts bit-identical master
// output — the strongest whole-system determinism property: scheduling
// must never change what the listener hears.
func TestEngineAudioIdenticalAcrossStrategies(t *testing.T) {
	const cycles = 100

	run := func(strategy string, threads int) []float64 {
		e, err := engine.New(engine.Config{
			Graph:    integConfig(),
			Strategy: strategy,
			Threads:  threads,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		var sums []float64
		for c := 0; c < cycles; c++ {
			e.Cycle(nil)
			out := e.Session().MasterOut()
			s := 0.0
			for i := range out.L {
				s += out.L[i] + 2*out.R[i]
			}
			sums = append(sums, s)
		}
		return sums
	}

	ref := run(sched.NameSequential, 1)
	nonzero := false
	for _, v := range ref {
		if v != 0 {
			nonzero = true
			break
		}
	}
	if !nonzero {
		t.Fatal("reference audio silent")
	}
	for _, strategy := range []string{sched.NameBusyWait, sched.NameSleep, sched.NameWorkSteal} {
		got := run(strategy, 4)
		for c := range ref {
			if got[c] != ref[c] {
				t.Fatalf("%s: cycle %d audio differs (%v vs %v)", strategy, c, got[c], ref[c])
			}
		}
	}
}

// TestDVSScratchChangesAudio exercises the full control path: slowing the
// virtual turntable must slow the deck, audibly changing the output.
func TestDVSScratchChangesAudio(t *testing.T) {
	e, err := engine.New(engine.Config{
		Graph:    integConfig(),
		Strategy: sched.NameBusyWait,
		Threads:  2,
		DVS:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	e.RunCycles(80) // let the decoders lock
	posBefore := e.Session().Decks[0].Position()
	e.RunCycles(100)
	advanceNormal := e.Session().Decks[0].Position() - posBefore

	e.SetTurntableSpeed(0, 0.5)
	e.RunCycles(80) // decoder speed EMA settles
	posBefore = e.Session().Decks[0].Position()
	e.RunCycles(100)
	advanceSlow := e.Session().Decks[0].Position() - posBefore

	if advanceSlow >= advanceNormal*0.8 {
		t.Fatalf("deck did not slow down: %v vs %v frames per 100 cycles",
			advanceSlow, advanceNormal)
	}
}

// TestSimulationBracketsReality: for any valid schedule, critical path <=
// k-core schedule <= sequential sum, and the measured sequential graph
// time should be close to the simulator's total work (both derive from
// the same measured node durations).
func TestSimulationBracketsReality(t *testing.T) {
	cfg := integConfig()
	durs, plan, err := engine.MeasureNodeDurations(cfg, 100)
	if err != nil {
		t.Fatal(err)
	}
	m, err := rescon.FromPlan(plan, durs)
	if err != nil {
		t.Fatal(err)
	}
	cp := m.EarliestStart().MakespanUS
	four, err := m.ListSchedule(4)
	if err != nil {
		t.Fatal(err)
	}
	one, err := m.ListSchedule(1)
	if err != nil {
		t.Fatal(err)
	}
	if !(cp <= four.MakespanUS+1e-9 && four.MakespanUS <= one.MakespanUS+1e-9) {
		t.Fatalf("bracket violated: cp %v, four %v, seq %v", cp, four.MakespanUS, one.MakespanUS)
	}
	if math.Abs(one.MakespanUS-m.TotalWork()) > 1e-6 {
		t.Fatalf("1-core schedule %v != total work %v", one.MakespanUS, m.TotalWork())
	}

	// The measured sequential graph time should be within 3x of the
	// simulated total work (timer overhead and cache effects allowed).
	e, err := engine.New(engine.Config{Graph: cfg, Strategy: sched.NameSequential, Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	met := e.RunCycles(100)
	measuredUS := met.Graph.Mean() * 1e3
	if measuredUS < m.TotalWork()/3 || measuredUS > m.TotalWork()*3 {
		t.Fatalf("measured sequential %v µs vs simulated work %v µs", measuredUS, m.TotalWork())
	}
}

// TestStaticExecutorEndToEnd replays an offline schedule on the real
// session and checks the audio matches the sequential reference.
func TestStaticExecutorEndToEnd(t *testing.T) {
	cfg := integConfig()
	durs, _, err := engine.MeasureNodeDurations(cfg, 30)
	if err != nil {
		t.Fatal(err)
	}

	run := func(build func(*graph.Plan) (sched.Scheduler, error)) []float64 {
		session, g, err := graph.BuildDJStar(cfg)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := g.Compile()
		if err != nil {
			t.Fatal(err)
		}
		s, err := build(plan)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		var sums []float64
		for c := 0; c < 60; c++ {
			session.Prepare()
			s.Execute()
			total := 0.0
			for _, v := range session.MasterOut().L {
				total += v
			}
			sums = append(sums, total)
		}
		return sums
	}

	ref := run(func(p *graph.Plan) (sched.Scheduler, error) {
		return sched.NewSequential(p, sched.Options{}), nil
	})
	got := run(func(p *graph.Plan) (sched.Scheduler, error) {
		model, err := rescon.FromPlan(p, durs)
		if err != nil {
			return nil, err
		}
		schedule, err := model.ListSchedule(3)
		if err != nil {
			return nil, err
		}
		lists, err := sched.FromScheduleOrder(p, schedule.Proc, schedule.Start, 3)
		if err != nil {
			return nil, err
		}
		return sched.NewStatic(p, lists, sched.Options{})
	})
	for c := range ref {
		if got[c] != ref[c] {
			t.Fatalf("static executor audio differs at cycle %d", c)
		}
	}
}

// TestRealtimeDeadlinesAcrossStrategies paces the engine against the
// simulated sound-card clock and requires the vast majority of packets to
// be delivered on time at zero synthetic load.
func TestRealtimeDeadlinesAcrossStrategies(t *testing.T) {
	if raceEnabled {
		t.Skip("wall-clock pacing is meaningless under the race detector's slowdown")
	}
	for _, strategy := range []string{sched.NameSequential, sched.NameBusyWait} {
		threads := 2
		if strategy == sched.NameSequential {
			threads = 1
		}
		e, err := engine.New(engine.Config{
			Graph:    integConfig(),
			Strategy: strategy,
			Threads:  threads,
		})
		if err != nil {
			t.Fatal(err)
		}
		rep := e.RunRealtime(100)
		e.Close()
		if rep.Late > 20 {
			t.Fatalf("%s: %d of 100 paced packets late (max lateness %.2f ms)",
				strategy, rep.Late, rep.MaxLatenessMS)
		}
	}
}

// TestPacketClockConsistency ties the audio constants together: the
// deadline used by the engine must equal the packet period of the audio
// configuration.
func TestPacketClockConsistency(t *testing.T) {
	wantMS := 128.0 / 44100.0 * 1e3
	// DeadlineMS derives from a time.Duration, which truncates to whole
	// nanoseconds.
	if math.Abs(engine.DeadlineMS-wantMS) > 1e-5 {
		t.Fatalf("DeadlineMS = %v, want %v", engine.DeadlineMS, wantMS)
	}
	if audio.PacketSize != 128 || audio.SampleRate != 44100 {
		t.Fatal("standard stream constants changed")
	}
}
