//go:build !race

package djstar

const raceEnabled = false
